(* Property-based tests (qcheck) on core data structures and the central
   coherence invariant. *)

let count = 200

(* --- Heap: popping always yields a sorted permutation --- *)

let prop_heap_sorts =
  QCheck.Test.make ~count ~name:"heap pops any int list sorted"
    QCheck.(list int)
    (fun values ->
      let h = Heap.create ~compare in
      List.iter (Heap.push h) values;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare values)

(* --- Stats: mean/min/max agree with a reference fold --- *)

let prop_stats_mean =
  QCheck.Test.make ~count ~name:"stats mean matches reference"
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1e6))
    (fun values ->
      let s = Stats.create () in
      List.iter (Stats.add s) values;
      let n = float_of_int (List.length values) in
      let mean = List.fold_left ( +. ) 0.0 values /. n in
      Float.abs (Stats.mean s -. mean) < 1e-6 *. (1.0 +. Float.abs mean))

let prop_stats_percentile_bounds =
  QCheck.Test.make ~count ~name:"percentiles stay within [min,max]"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1e6)) (float_bound_inclusive 100.0))
    (fun (values, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) values;
      let v = Stats.percentile s p in
      v >= Stats.min s && v <= Stats.max s)

(* --- Rng: int stays in bounds for arbitrary positive bounds --- *)

let prop_rng_bounds =
  QCheck.Test.make ~count ~name:"rng int in bounds"
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Rng.int r bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

(* --- Vma.Set: remove_range never leaves overlap, preserves page count --- *)

let vma_layout_gen =
  (* Non-overlapping VMAs built from sorted segment boundaries. *)
  QCheck.Gen.(
    list_size (1 -- 8) (pair (0 -- 500) (1 -- 30)) >|= fun segments ->
    let _, vmas =
      List.fold_left
        (fun (cursor, acc) (gap, pages) ->
          let start = cursor + gap + 1 in
          (start + pages, Vma.make ~start_vpn:start ~pages () :: acc))
        (0, []) segments
    in
    List.rev vmas)

let total_pages set =
  List.fold_left (fun acc (v : Vma.t) -> acc + v.Vma.pages) 0 (Vma.Set.to_list set)

let prop_vma_remove_conserves_pages =
  QCheck.Test.make ~count ~name:"vma remove_range conserves pages"
    QCheck.(
      pair (make vma_layout_gen) (pair (int_range 0 600) (int_range 1 50)))
    (fun (vmas, (vpn, pages)) ->
      let set = List.fold_left Vma.Set.add Vma.Set.empty vmas in
      let before = total_pages set in
      let set', removed = Vma.Set.remove_range set ~vpn ~pages in
      let removed_pages = List.fold_left (fun a (v : Vma.t) -> a + v.Vma.pages) 0 removed in
      total_pages set' + removed_pages = before)

let prop_vma_remove_leaves_no_coverage =
  QCheck.Test.make ~count ~name:"vma remove_range leaves hole"
    QCheck.(
      pair (make vma_layout_gen) (pair (int_range 0 600) (int_range 1 50)))
    (fun (vmas, (vpn, pages)) ->
      let set = List.fold_left Vma.Set.add Vma.Set.empty vmas in
      let set', _ = Vma.Set.remove_range set ~vpn ~pages in
      let ok = ref true in
      for v = vpn to vpn + pages - 1 do
        if Vma.Set.find set' ~vpn:v <> None then ok := false
      done;
      !ok)

(* --- Page_table: map/unmap round-trips for arbitrary page sets --- *)

let vpn_set_gen = QCheck.Gen.(list_size (1 -- 40) (0 -- 100_000) >|= List.sort_uniq compare)

let prop_pt_roundtrip =
  QCheck.Test.make ~count ~name:"page table map/unmap round trip"
    (QCheck.make vpn_set_gen)
    (fun vpns ->
      let pt = Page_table.create () in
      List.iteri
        (fun i vpn -> Page_table.map pt ~vpn ~size:Tlb.Four_k (Pte.user_data ~pfn:i))
        vpns;
      let all_present =
        List.for_all (fun vpn -> Page_table.walk pt ~vpn <> None) vpns
      in
      List.iter (fun vpn -> ignore (Page_table.unmap pt ~vpn ~free_tables:true ())) vpns;
      all_present
      && Page_table.mapped_count pt = 0
      && Page_table.table_pages pt = 0)

let prop_pt_iter_complete =
  QCheck.Test.make ~count ~name:"page table iter finds every mapping"
    (QCheck.make vpn_set_gen)
    (fun vpns ->
      let pt = Page_table.create () in
      List.iteri
        (fun i vpn -> Page_table.map pt ~vpn ~size:Tlb.Four_k (Pte.user_data ~pfn:i))
        vpns;
      let seen = ref [] in
      Page_table.iter pt ~f:(fun vpn _ _ -> seen := vpn :: !seen);
      List.sort compare !seen = vpns)

(* --- Tlb: after any op sequence, lookups never return flushed entries --- *)

type tlb_op =
  | Insert of int * int  (* vpn, pcid in {1,2} *)
  | Invlpg of int * int
  | Invpcid of int * int
  | Flush_pcid of int
  | Flush_all

let tlb_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun v p -> Insert (v, 1 + (p land 1))) (0 -- 64) int;
        map2 (fun v p -> Invlpg (v, 1 + (p land 1))) (0 -- 64) int;
        map2 (fun v p -> Invpcid (v, 1 + (p land 1))) (0 -- 64) int;
        map (fun p -> Flush_pcid (1 + (p land 1))) int;
        return Flush_all;
      ])

(* A reference model: a set of (pcid, vpn). INVLPG in our model flushes the
   addressed vpn in the current pcid and global entries; we only insert
   non-global 4K entries here, so the model is a plain set. *)
let prop_tlb_matches_model =
  QCheck.Test.make ~count ~name:"tlb agrees with a set model"
    (QCheck.make QCheck.Gen.(list_size (0 -- 200) tlb_op_gen))
    (fun ops ->
      let t = Tlb.create ~capacity:4096 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun op ->
          match op with
          | Insert (vpn, pcid) ->
              Tlb.insert t
                {
                  Tlb.vpn;
                  pfn = vpn;
                  pcid;
                  size = Tlb.Four_k;
                  global = false;
                  writable = true;
                  fractured = false;
              ck_ver = -1;
                };
              Hashtbl.replace model (pcid, vpn) ()
          | Invlpg (vpn, pcid) ->
              Tlb.invlpg t ~current_pcid:pcid ~vpn;
              Hashtbl.remove model (pcid, vpn)
          | Invpcid (vpn, pcid) ->
              Tlb.invpcid_addr t ~pcid ~vpn;
              Hashtbl.remove model (pcid, vpn)
          | Flush_pcid pcid ->
              Tlb.flush_pcid t ~pcid;
              Hashtbl.iter (fun (p, v) () -> if p = pcid then Hashtbl.remove model (p, v))
                (Hashtbl.copy model)
          | Flush_all ->
              Tlb.flush_all t;
              Hashtbl.reset model)
        ops;
      (* The TLB may hold FEWER entries than the model (capacity), but
         never an entry the model flushed. *)
      let ok = ref true in
      for pcid = 1 to 2 do
        for vpn = 0 to 64 do
          if Tlb.mem t ~pcid ~vpn && not (Hashtbl.mem model (pcid, vpn)) then ok := false
        done
      done;
      !ok)

(* --- Flush_info: merge covers both inputs --- *)

let info_gen =
  QCheck.Gen.(
    map2
      (fun start pages ->
        Flush_info.ranged ~mm_id:1 ~start_vpn:start ~pages ~new_tlb_gen:1 ())
      (0 -- 1000) (1 -- 40))

let prop_flush_info_merge_covers =
  QCheck.Test.make ~count ~name:"flush_info merge covers both ranges"
    (QCheck.make QCheck.Gen.(pair info_gen info_gen))
    (fun (a, b) ->
      let m = Flush_info.merge a b in
      let covered_by_m (i : Flush_info.t) =
        i.Flush_info.full
        || List.for_all (fun vpn -> Flush_info.covers m ~vpn) (Flush_info.vpns i)
      in
      covered_by_m a && covered_by_m b)

(* --- Frame_alloc: arbitrary alloc/free sequences keep counts consistent --- *)

let prop_frames_consistent =
  QCheck.Test.make ~count ~name:"frame allocator counts consistent"
    (QCheck.make QCheck.Gen.(list_size (0 -- 100) bool))
    (fun ops ->
      let f = Frame_alloc.create ~frames:4096 in
      let live = ref [] in
      List.iter
        (fun do_alloc ->
          if do_alloc then live := Frame_alloc.alloc f :: !live
          else begin
            match !live with
            | [] -> ()
            | pfn :: rest ->
                Frame_alloc.free f pfn;
                live := rest
          end)
        ops;
      Frame_alloc.allocated f = List.length !live
      && List.for_all (Frame_alloc.is_allocated f) !live)

(* --- End-to-end coherence: random mm churn under every optimization --- *)

type churn_op = Touch of int | Madvise of int * int | Protect of int * bool

let churn_op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun p -> Touch p) (0 -- 15);
        map2 (fun p n -> Madvise (p, 1 + (n mod 4))) (0 -- 12) int;
        map2 (fun p w -> Protect (p, w)) (0 -- 15) bool;
      ])

let run_churn ~opts ops =
  let m = Machine.create ~opts ~seed:99L () in
  let mm = Machine.new_mm m in
  let pages = 16 in
  let stop = ref false in
  let addr_box = ref 0 in
  let ready = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"reader" (fun () ->
      Waitq.Completion.wait ready;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        (try Access.touch_range m ~cpu:14 ~addr:!addr_box ~pages ~write:false
         with Fault.Segfault _ -> ());
        Cpu.compute cpu_t ~quantum:100 200
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"mutator" (fun () ->
      let addr = Syscall.mmap m ~cpu:0 ~pages () in
      addr_box := addr;
      Access.touch_range m ~cpu:0 ~addr ~pages ~write:true;
      Waitq.Completion.fire ready;
      List.iter
        (fun op ->
          try
            match op with
            | Touch p -> Access.write m ~cpu:0 ~vaddr:(addr + (p * Addr.page_size))
            | Madvise (p, n) ->
                let n = Stdlib.min n (pages - p) in
                if n > 0 then
                  Syscall.madvise_dontneed m ~cpu:0 ~addr:(addr + (p * Addr.page_size))
                    ~pages:n
            | Protect (p, w) ->
                Syscall.mprotect m ~cpu:0 ~addr:(addr + (p * Addr.page_size)) ~pages:1
                  ~writable:w
          with Fault.Segfault _ -> ())
        ops;
      Machine.delay m 30_000;
      stop := true);
  Kernel.run m;
  Checker.violation_count m.Machine.checker = 0

let prop_coherence_under_random_churn_all_opts =
  QCheck.Test.make ~count:30 ~name:"coherence invariant under random churn (all opts)"
    (QCheck.make QCheck.Gen.(list_size (5 -- 30) churn_op_gen))
    (fun ops -> run_churn ~opts:(Opts.all ~safe:true) ops)

let prop_coherence_under_random_churn_baseline =
  QCheck.Test.make ~count:20 ~name:"coherence invariant under random churn (baseline)"
    (QCheck.make QCheck.Gen.(list_size (5 -- 30) churn_op_gen))
    (fun ops -> run_churn ~opts:(Opts.baseline ~safe:true) ops)

(* --- end-to-end kernel invariants under random op sequences --- *)

type mm_op = Map of int | Touch_all | Drop of int | Unmap of int | Remap of int

let mm_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Map (1 + (abs n mod 6))) int);
        (3, return Touch_all);
        (2, map (fun i -> Drop i) (0 -- 10));
        (2, map (fun i -> Unmap i) (0 -- 10));
        (1, map (fun i -> Remap i) (0 -- 10));
      ])

(* Replay ops on a live machine, tracking mapped regions; returns
   (machine, leftover regions). *)
let replay_ops ops =
  let m = Machine.create ~opts:(Opts.all ~safe:true) ~seed:7L () in
  let mm = Machine.new_mm m in
  let regions = ref [] in
  (* (addr, pages) list *)
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"driver" (fun () ->
      List.iter
        (fun op ->
          try
            match op with
            | Map pages ->
                let addr = Syscall.mmap m ~cpu:0 ~pages () in
                regions := (addr, pages) :: !regions
            | Touch_all ->
                List.iter
                  (fun (addr, pages) ->
                    Access.touch_range m ~cpu:0 ~addr ~pages ~write:true)
                  !regions
            | Drop i -> begin
                match List.nth_opt !regions i with
                | Some (addr, pages) ->
                    Syscall.madvise_dontneed m ~cpu:0 ~addr ~pages
                | None -> ()
              end
            | Unmap i -> begin
                match List.nth_opt !regions i with
                | Some (addr, pages) ->
                    Syscall.munmap m ~cpu:0 ~addr ~pages;
                    regions := List.filteri (fun j _ -> j <> i) !regions
                | None -> ()
              end
            | Remap i -> begin
                match List.nth_opt !regions i with
                | Some (addr, pages) ->
                    let addr' = Syscall.mremap m ~cpu:0 ~addr ~pages in
                    regions :=
                      List.mapi
                        (fun j r -> if j = i then (addr', pages) else r)
                        !regions
                | None -> ()
              end
          with Fault.Segfault _ -> ())
        ops);
  Kernel.run m;
  (m, mm, !regions)

let prop_frames_conserved_end_to_end =
  QCheck.Test.make ~count:25 ~name:"kernel: frames conserved after full teardown"
    (QCheck.make QCheck.Gen.(list_size (1 -- 25) mm_op_gen))
    (fun ops ->
      let m, mm, regions = replay_ops ops in
      (* Tear the rest down and require exact frame conservation. *)
      let leak = ref false in
      Kernel.spawn_user m ~cpu:0 ~mm ~name:"teardown" (fun () ->
          List.iter
            (fun (addr, pages) -> Syscall.munmap m ~cpu:0 ~addr ~pages)
            regions;
          leak := Frame_alloc.allocated m.Machine.frames <> 0);
      Kernel.run m;
      (not !leak) && Checker.violation_count m.Machine.checker = 0)

let prop_mapped_readable_unmapped_faults =
  QCheck.Test.make ~count:25 ~name:"kernel: mapped readable, unmapped faults"
    (QCheck.make QCheck.Gen.(list_size (1 -- 20) mm_op_gen))
    (fun ops ->
      let m, mm, regions = replay_ops ops in
      let ok = ref true in
      Kernel.spawn_user m ~cpu:0 ~mm ~name:"verify" (fun () ->
          (* Everything still in a live region must be readable... *)
          List.iter
            (fun (addr, pages) ->
              try Access.touch_range m ~cpu:0 ~addr ~pages ~write:false
              with Fault.Segfault _ -> ok := false)
            regions;
          (* ...and a far-away address must fault. *)
          match Access.read m ~cpu:0 ~vaddr:(Addr.addr_of_vpn (1 lsl 28)) with
          | () -> ok := false
          | exception Fault.Segfault _ -> ());
      Kernel.run m;
      !ok && Checker.violation_count m.Machine.checker = 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_sorts;
      prop_stats_mean;
      prop_stats_percentile_bounds;
      prop_rng_bounds;
      prop_vma_remove_conserves_pages;
      prop_vma_remove_leaves_no_coverage;
      prop_pt_roundtrip;
      prop_pt_iter_complete;
      prop_tlb_matches_model;
      prop_flush_info_merge_covers;
      prop_frames_consistent;
      prop_coherence_under_random_churn_all_opts;
      prop_coherence_under_random_churn_baseline;
      prop_frames_conserved_end_to_end;
      prop_mapped_readable_unmapped_faults;
    ]
