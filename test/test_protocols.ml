(* Tests for the protocol-backend interface (DESIGN.md §13): config-key
   and memo-cell separation between backends, backend-observable flush
   semantics (sync-broadcast full flushes, queue-spin ring overflow),
   oracle indifference to optimization flags, differential equivalence of
   every backend against the oracle over a fuzz corpus, and shootout
   report determinism across -j. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------- key / memo separation ---------- *)

let test_opts_key_distinct_per_protocol () =
  let keys =
    List.map (fun p -> Opts.key (Opts.with_protocol p ~safe:true)) Opts.all_protocols
  in
  check int_t "every protocol keys differently"
    (List.length Opts.all_protocols)
    (List.length (List.sort_uniq compare keys))

let micro_config protocol =
  let opts = Opts.with_protocol protocol ~safe:true in
  Microbench.default_config ~opts ~placement:Microbench.Cross_socket ~pte_count:10

let test_memo_cells_not_shared_across_protocols () =
  (* Two configs differing only in protocol must own separate cells; the
     same config registered twice must share one. *)
  let memo = Shard.create_memo () in
  let register protocol =
    let config = micro_config protocol in
    let jobs, _get, owned =
      Shard.memo_cell memo ~key:(Microbench.config_key config) ~weight:1.0 (fun () ->
          Microbench.run config)
    in
    (List.length jobs, owned)
  in
  check (Alcotest.pair int_t bool_t) "paper owns its cell" (1, true)
    (register Opts.Paper);
  check (Alcotest.pair int_t bool_t) "queue-spin owns a distinct cell" (1, true)
    (register Opts.Queue_spin);
  check (Alcotest.pair int_t bool_t) "re-registering paper reuses it" (0, false)
    (register Opts.Paper)

(* ---------- backend-observable flush semantics ---------- *)

let tlb_of m cpu = Cpu.tlb (Machine.cpu m cpu)

let map_pages m mm ~pages =
  let start_vpn = Mm_struct.alloc_va_range mm ~pages () in
  Mm_struct.add_vma mm (Vma.make ~start_vpn ~pages ());
  let pt = Mm_struct.page_table mm in
  for i = 0 to pages - 1 do
    Page_table.map pt ~vpn:(start_vpn + i) ~size:Tlb.Four_k
      (Pte.user_data ~pfn:(Frame_alloc.alloc m.Machine.frames))
  done;
  start_vpn

let warm m ~cpu ~start_vpn ~pages =
  Access.touch_range m ~cpu ~addr:(Addr.addr_of_vpn start_vpn) ~pages ~write:false

(* Run [body] as a user thread on cpu 0 with a busy responder on cpu 14
   (cross-socket), as in the shootdown tests. *)
let with_pair ~opts body =
  let m = Machine.create ~opts ~seed:3L () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"responder" (fun () ->
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      body m mm;
      Machine.delay m 10_000;
      stop := true);
  Kernel.run m;
  m

(* Plant a translation in the responder's TLB at [vpn], kernel PCID of its
   current ASID slot, so ranged-vs-full responder behavior is observable. *)
let plant m ~cpu ~vpn =
  Tlb.insert (tlb_of m cpu)
    {
      Tlb.vpn;
      pfn = 0;
      pcid = Percpu.kernel_pcid (Machine.percpu m cpu).Percpu.curr_asid;
      size = Tlb.Four_k;
      global = false;
      writable = true;
      fractured = false;
      ck_ver = -1;
    }

let planted_present m ~cpu ~vpn =
  Tlb.mem (tlb_of m cpu)
    ~pcid:(Percpu.kernel_pcid (Machine.percpu m cpu).Percpu.curr_asid)
    ~vpn

let test_sync_broadcast_ipis_every_cpu () =
  (* The cronus-style backend broadcasts unfiltered: one 1-page flush IPIs
     every other CPU on the machine (the paper protocol would send exactly
     one, to the only other CPU in the mm's cpumask), and the responder
     applies the posted descriptor through the shared ranged flush. *)
  let ipis = ref 0 and n = ref 0 and gone = ref false in
  let _m =
    with_pair ~opts:(Opts.with_protocol Opts.Sync_broadcast ~safe:true) (fun m mm ->
        let vpn = map_pages m mm ~pages:1 in
        warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
        plant m ~cpu:14 ~vpn;
        n := Topology.n_cpus m.Machine.topo;
        Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
        Machine.delay m 10_000;
        ipis := Apic.ipis_sent m.Machine.apic;
        gone := not (planted_present m ~cpu:14 ~vpn))
  in
  check int_t "every other CPU IPI'd" (!n - 1) !ipis;
  check bool_t "flushed on the responder" true !gone

let test_queue_ring_overflow_collapses_to_flush_all () =
  (* Under-capacity ranged flushes post per-page ring entries: only the
     posted vpns are invalidated. Overflowing Percpu.queue_slots collapses
     the post to a whole-TLB flush-all on the responder. *)
  let small_survives = ref false and overflow_gone = ref false in
  let _m =
    with_pair ~opts:(Opts.with_protocol Opts.Queue_spin ~safe:true) (fun m mm ->
        let pages = Percpu.queue_slots + 1 in
        let vpn = map_pages m mm ~pages in
        let other = map_pages m mm ~pages:1 in
        warm m ~cpu:0 ~start_vpn:vpn ~pages;
        plant m ~cpu:14 ~vpn:other;
        (* 2 entries fit in the ring: [other] must survive the drain. *)
        Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:2 ();
        Machine.delay m 10_000;
        small_survives := planted_present m ~cpu:14 ~vpn:other;
        (* queue_slots+1 entries overflow: the responder flushes all. *)
        Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages ();
        Machine.delay m 10_000;
        overflow_gone := not (planted_present m ~cpu:14 ~vpn:other))
  in
  check bool_t "unposted entry survives an in-capacity drain" true !small_survives;
  check bool_t "overflow collapses to flush-all" true !overflow_gone

(* ---------- oracle indifference to optimization flags ---------- *)

(* PR-site audit pin: migrating the oracle special cases into a backend
   found no behavioral divergence, so the oracle must ignore every
   optimization bit — notably cow (16) and early-ack (2), the two flags
   the scattered [oracle_flush] branches used to guard against. *)
let test_oracle_ignores_combo_flags () =
  let program = Fuzz.gen_program 11 in
  let reference = Fuzz.execute ~opts:(Opts.oracle ~safe:true) program in
  List.iter
    (fun combo ->
      let opts =
        Fuzz.opts_of_combo ~protocol:Opts.Oracle ~safe:true ~inject_bug:false combo
      in
      let r = Fuzz.execute ~opts program in
      check bool_t
        (Printf.sprintf "combo %d: same observations as the plain oracle" combo)
        true
        (r.Fuzz.xr_obs = reference.Fuzz.xr_obs);
      check bool_t
        (Printf.sprintf "combo %d: same final state" combo)
        true
        (r.Fuzz.xr_final = reference.Fuzz.xr_final))
    [ 2; 16; 18; 63 ]

(* ---------- differential equivalence over a fuzz corpus ---------- *)

(* Every backend must be indistinguishable from the conservative oracle on
   a fixed corpus: identical observations and final state, no checker
   violation, no quiescence-invariant failure (run_program checks all of
   these). The corpus seeds span optimization combos and topologies. *)
let test_backends_match_oracle_on_corpus () =
  let seeds = [ 0; 3; 7; 17; 42; 56 ] in
  List.iter
    (fun protocol ->
      List.iter
        (fun seed ->
          let program =
            { (Fuzz.gen_program seed) with Fuzz.p_protocol = protocol }
          in
          match Fuzz.run_program program with
          | [] -> ()
          | reasons ->
              Alcotest.failf "%s diverged on seed %d: %s"
                (Opts.protocol_label protocol)
                seed
                (String.concat "; " reasons))
        seeds)
    [ Opts.Paper; Opts.Sync_broadcast; Opts.Queue_spin ]

(* ---------- queue-spin resend ladder ---------- *)

(* The retry ladder must re-IPI only the still-pending subset: cpu 1 acks
   within the initial spin, cpu 14 sits in one uninterruptible compute
   stretch that outlasts it, so every resend must go to cpu 14 alone. The
   per-rank delivery meter separates the two (cpu 1 shares the
   initiator's socket, cpu 14 is cross-socket); before the subset fix
   each resend re-billed the already-acked cpu 1 too. *)
let test_queue_resend_only_unacked () =
  let opts = Opts.with_protocol Opts.Queue_spin ~safe:true in
  let m = Machine.create ~opts ~seed:3L () in
  let near_rank = Machine.distance_rank m 0 1
  and far_rank = Machine.distance_rank m 0 14 in
  check bool_t "ranks distinguish near from far" true (near_rank <> far_rank);
  let near = ref 0 and far = ref 0 in
  Apic.set_delivery_meter m.Machine.apic (fun rank _cycles ->
      if rank = near_rank then incr near
      else if rank = far_rank then incr far);
  let mm = Machine.new_mm m in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:1 ~mm ~name:"fast" (fun () ->
      let cpu_t = Machine.cpu m 1 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"slow" (fun () ->
      let cpu_t = Machine.cpu m 14 in
      (* One uninterruptible stretch: the IPI pends past the initial
         2000-cycle spin, forcing at least one resend. *)
      Cpu.compute cpu_t 9_000;
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      let vpn = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
      Machine.delay m 20_000;
      stop := true);
  Kernel.run m;
  check int_t "near responder IPI'd exactly once" 1 !near;
  check bool_t "far responder resent at least once" true (!far >= 2)

(* ---------- cross-backend workload cells ---------- *)

(* Planned after fig10_plan/fig11_plan and the bench's 56-CPU cell on the
   same memos, the paper backend's workload cells must all be reused —
   [Opts.all ~safe:true] is value-identical to the figures' final
   "+batching" stack and to the bench bigmachine config — while the other
   three backends own every one of theirs. *)
let test_paper_workload_cells_reused () =
  let sysbench_memo = Shard.create_memo () in
  let apache_memo = Shard.create_memo () in
  let bigmachine_memo = Shard.create_memo () in
  let fig10 = Figures.fig10_scale ~quick:true in
  let fig11 = Figures.fig11_scale ~quick:true in
  let (_ : Shard.plan) = Figures.fig10_plan ~memo:sysbench_memo fig10 in
  let (_ : Shard.plan) = Figures.fig11_plan ~memo:apache_memo fig11 in
  let cfg =
    Bigmachine.quick_shape
      (Bigmachine.default_config ~opts:(Opts.all ~safe:true) ~n_cpus:56)
  in
  let _js, _get, owned =
    Shard.memo_cell bigmachine_memo ~key:(Bigmachine.config_key cfg) ~weight:1.0
      (fun () -> Bigmachine.run cfg)
  in
  check bool_t "the bench registration owns the 56-CPU cell" true owned;
  let f10 =
    List.length fig10.Figures.sys_threads * List.length fig10.Figures.sys_seeds
  in
  let f11 =
    List.length fig11.Figures.ap_cores * List.length fig11.Figures.ap_seeds
  in
  let jobs, _get, reused =
    Shootout.workload_cells ~sysbench_memo ~apache_memo ~bigmachine_memo ~fig10
      ~fig11 ~quick:true ()
  in
  check int_t "every paper cell reused from the earlier plans" (f10 + f11 + 1) reused;
  check int_t "the other three backends own all their cells"
    (3 * (f10 + f11 + 1))
    (List.length jobs)

let test_workloads_identical_at_any_j () =
  let run jobs = Shootout.run_workloads ~quick:true ~jobs Shootout.Table in
  let j1 = run 1 in
  check bool_t "-j2 byte-identical to -j1" true (String.equal j1 (run 2));
  check bool_t "-j4 byte-identical to -j1" true (String.equal j1 (run 4))

(* ---------- shootout determinism ---------- *)

let test_shootout_identical_at_any_j () =
  let run jobs = Shootout.run ~iterations:30 ~jobs Shootout.Table in
  let j1 = run 1 in
  check bool_t "report lists every backend" true
    (List.for_all
       (fun label ->
         let n = String.length label in
         let rec go i =
           i + n <= String.length j1 && (String.sub j1 i n = label || go (i + 1))
         in
         go 0)
       [ "paper"; "paper-baseline"; "oracle"; "sync-broadcast"; "queue-spin" ]);
  check bool_t "-j2 byte-identical to -j1" true (String.equal j1 (run 2));
  check bool_t "-j4 byte-identical to -j1" true (String.equal j1 (run 4))

let suite =
  [
    Alcotest.test_case "opts key distinct per protocol" `Quick
      test_opts_key_distinct_per_protocol;
    Alcotest.test_case "memo cells not shared across protocols" `Quick
      test_memo_cells_not_shared_across_protocols;
    Alcotest.test_case "sync-broadcast IPIs every CPU" `Quick
      test_sync_broadcast_ipis_every_cpu;
    Alcotest.test_case "queue-spin ring overflow -> flush-all" `Quick
      test_queue_ring_overflow_collapses_to_flush_all;
    Alcotest.test_case "oracle ignores optimization flags" `Quick
      test_oracle_ignores_combo_flags;
    Alcotest.test_case "backends match oracle on corpus" `Quick
      test_backends_match_oracle_on_corpus;
    Alcotest.test_case "queue-spin resends only to un-acked CPUs" `Quick
      test_queue_resend_only_unacked;
    Alcotest.test_case "paper workload cells reused from figure plans" `Quick
      test_paper_workload_cells_reused;
    Alcotest.test_case "workload report byte-identical at any -j" `Quick
      test_workloads_identical_at_any_j;
    Alcotest.test_case "shootout byte-identical at any -j" `Quick
      test_shootout_identical_at_any_j;
  ]
