(* Protocol-level tests for Shootdown: baseline ordering, concurrent
   flushes, early ack (and its freed-tables exception), cacheline
   consolidation, in-context flushing, generation tracking, lazy-TLB
   skipping and userspace-safe batching. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let make ?(opts = Opts.baseline ~safe:true) () = Machine.create ~opts ~seed:3L ()

(* Map [pages] anonymous pages into [mm] and return the base vpn; PTEs are
   created eagerly so flushes have something to flush. *)
let map_pages m mm ~pages =
  let start_vpn = Mm_struct.alloc_va_range mm ~pages () in
  Mm_struct.add_vma mm (Vma.make ~start_vpn ~pages ());
  let pt = Mm_struct.page_table mm in
  for i = 0 to pages - 1 do
    Page_table.map pt ~vpn:(start_vpn + i) ~size:Tlb.Four_k
      (Pte.user_data ~pfn:(Frame_alloc.alloc m.Machine.frames))
  done;
  start_vpn

(* Touch pages from user context so the TLB holds their translations. *)
let warm m ~cpu ~start_vpn ~pages =
  Access.touch_range m ~cpu ~addr:(Addr.addr_of_vpn start_vpn) ~pages ~write:false

let user_pcid_of m cpu =
  let pcpu = Machine.percpu m cpu in
  if m.Machine.opts.Opts.safe then Percpu.user_pcid pcpu.Percpu.curr_asid
  else Percpu.kernel_pcid pcpu.Percpu.curr_asid

let tlb_of m cpu = Cpu.tlb (Machine.cpu m cpu)

(* Run [body] as a user thread on cpu 0 with a busy responder on
   [responder]; returns after the machine quiesces. *)
let with_pair ?opts ~responder body =
  let m = make ?opts () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:responder ~mm ~name:"responder" (fun () ->
      let cpu_t = Machine.cpu m responder in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      body m mm;
      Machine.delay m 10_000;
      stop := true);
  Kernel.run m;
  m

let test_local_only_no_ipi () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:2 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:2;
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:2 ();
      check bool_t "entry flushed" false
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn));
  Kernel.run m;
  check int_t "no shootdowns" 0 m.Machine.stats.Machine.shootdowns;
  check int_t "local-only counted" 1 m.Machine.stats.Machine.local_only_flushes;
  check int_t "no IPIs" 0 (Apic.ipis_sent m.Machine.apic)

let test_shootdown_flushes_remote () =
  let remote_had = ref false and remote_gone = ref false in
  let vpn_box = ref 0 in
  let m =
    with_pair ~responder:14 (fun m mm ->
        let vpn = map_pages m mm ~pages:1 in
        vpn_box := vpn;
        (* Let the responder cache the translation too. *)
        warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
        Tlb.insert (tlb_of m 14)
          {
            Tlb.vpn;
            pfn = 0;
            pcid = user_pcid_of m 14;
            size = Tlb.Four_k;
            global = false;
            writable = true;
            fractured = false;
              ck_ver = -1;
          };
        remote_had := Tlb.mem (tlb_of m 14) ~pcid:(user_pcid_of m 14) ~vpn;
        Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
        (* The kernel part of the remote flush is synchronous with the ack
           under the baseline (no early ack). The user PCID entry must be
           gone before the responder returns to user mode, which has
           happened by quiescence. *)
        Machine.delay m 10_000;
        remote_gone := not (Tlb.mem (tlb_of m 14) ~pcid:(user_pcid_of m 14) ~vpn))
  in
  check bool_t "remote cached it" true !remote_had;
  check bool_t "remote flushed" true !remote_gone;
  check int_t "one shootdown" 1 m.Machine.stats.Machine.shootdowns;
  check int_t "one IPI" 1 (Apic.ipis_sent m.Machine.apic)

(* Deterministic latency comparison across two option sets. *)
let measure_flush ~opts ~pages ~responder =
  let cycles = ref 0 in
  let _m =
    with_pair ~opts ~responder (fun m mm ->
        let vpn = map_pages m mm ~pages in
        warm m ~cpu:0 ~start_vpn:vpn ~pages;
        let t0 = Machine.now m in
        Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages ();
        cycles := Machine.now m - t0)
  in
  !cycles

let test_concurrent_faster_than_baseline () =
  let baseline = measure_flush ~opts:(Opts.baseline ~safe:true) ~pages:10 ~responder:14 in
  let opts = Opts.baseline ~safe:true in
  opts.Opts.concurrent_flush <- true;
  let concurrent = measure_flush ~opts ~pages:10 ~responder:14 in
  check bool_t
    (Printf.sprintf "concurrent (%d) < baseline (%d)" concurrent baseline)
    true (concurrent < baseline)

let test_early_ack_faster_still () =
  let opts1 = Opts.baseline ~safe:true in
  opts1.Opts.concurrent_flush <- true;
  let concurrent = measure_flush ~opts:opts1 ~pages:10 ~responder:14 in
  let opts2 = Opts.copy opts1 in
  opts2.Opts.early_ack <- true;
  let early = measure_flush ~opts:opts2 ~pages:10 ~responder:14 in
  check bool_t
    (Printf.sprintf "early-ack (%d) < concurrent-only (%d)" early concurrent)
    true (early < concurrent)

let test_all4_faster_than_baseline_1pte () =
  let baseline = measure_flush ~opts:(Opts.baseline ~safe:true) ~pages:1 ~responder:14 in
  let all = measure_flush ~opts:(Opts.all_general ~safe:true) ~pages:1 ~responder:14 in
  check bool_t "all4 wins even at 1 PTE" true (all < baseline)

let measure_flush_freed ~opts =
  let cycles = ref 0 in
  let _m =
    with_pair ~opts ~responder:14 (fun m mm ->
        let vpn = map_pages m mm ~pages:4 in
        warm m ~cpu:0 ~start_vpn:vpn ~pages:4;
        let t0 = Machine.now m in
        Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:4
          ~freed_tables:true ();
        cycles := Machine.now m - t0)
  in
  !cycles

let test_early_ack_disabled_when_tables_freed () =
  (* With freed page tables the responder must not ack before flushing;
     the early-ack flag must therefore make no difference at all. *)
  let opts_no = Opts.baseline ~safe:true in
  opts_no.Opts.concurrent_flush <- true;
  let opts_yes = Opts.copy opts_no in
  opts_yes.Opts.early_ack <- true;
  let without = measure_flush_freed ~opts:opts_no in
  let with_ea = measure_flush_freed ~opts:opts_yes in
  check int_t "identical cycle count" without with_ea

let test_cacheline_consolidation_reduces_transfers () =
  let transfers ~opts =
    let result = ref 0 in
    let _m =
      with_pair ~opts ~responder:14 (fun m mm ->
          let vpn = map_pages m mm ~pages:1 in
          warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
          Cache.reset_stats m.Machine.registry;
          Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
          Machine.delay m 10_000;
          let t = Cache.totals m.Machine.registry in
          result :=
            t.Cache.smt_transfers + t.Cache.same_socket_transfers
            + t.Cache.cross_socket_transfers)
    in
    !result
  in
  let base_opts = Opts.baseline ~safe:true in
  let cons_opts = Opts.baseline ~safe:true in
  cons_opts.Opts.cacheline_consolidation <- true;
  let base = transfers ~opts:base_opts in
  let cons = transfers ~opts:cons_opts in
  check bool_t (Printf.sprintf "consolidated (%d) < baseline (%d)" cons base) true
    (cons < base)

let test_full_flush_over_threshold () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:40 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:40;
      (* Also warm an address outside the flush range. *)
      let other = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:other ~pages:1;
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:40 ();
      (* 40 > 33: everything in the kernel PCID went, and the user PCID
         full flush is pending (safe mode defers it). *)
      check bool_t "outside range flushed too (pending user full)" true
        (match (Machine.percpu m 0).Percpu.pending_user with
        | Percpu.Full_flush -> true
        | Percpu.Ranged _ | Percpu.No_flush -> false);
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true;
      check bool_t "user entry outside range gone" false
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn:other));
  Kernel.run m

let test_responder_gen_skip () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      let gen = Mm_struct.bump_tlb_gen mm in
      let info = Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1 ~new_tlb_gen:gen () in
      check bool_t "first executes" true (Shootdown.flush_tlb_func m ~cpu:0 info = `Ranged);
      check bool_t "second skips" true (Shootdown.flush_tlb_func m ~cpu:0 info = `Skipped));
  Kernel.run m;
  check int_t "skip counted" 1 m.Machine.stats.Machine.flush_requests_skipped

let test_responder_gen_fast_forward_full () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      (* Fall several generations behind, then serve an old request. *)
      let g1 = Mm_struct.bump_tlb_gen mm in
      let _g2 = Mm_struct.bump_tlb_gen mm in
      let g3 = Mm_struct.bump_tlb_gen mm in
      let old_info =
        Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1 ~new_tlb_gen:g3 ()
      in
      ignore g1;
      check bool_t "multiple gens behind takes a full flush" true
        (Shootdown.flush_tlb_func m ~cpu:0 old_info = `Full);
      (* Fast-forwarded: a request for an intermediate gen now skips. *)
      let mid_info =
        Flush_info.ranged ~mm_id:(Mm_struct.id mm) ~start_vpn:vpn ~pages:1 ~new_tlb_gen:g3 ()
      in
      check bool_t "subsequent skipped" true
        (Shootdown.flush_tlb_func m ~cpu:0 mid_info = `Skipped));
  Kernel.run m;
  check int_t "fallback counted" 1 m.Machine.stats.Machine.full_flush_fallbacks

let test_lazy_cpu_skipped_and_syncs () =
  let m = make () in
  let mm = Machine.new_mm m in
  let phase2 = Waitq.Completion.create m.Machine.engine in
  let vpn_box = ref 0 in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"lazy-side" (fun () ->
      (* Cache a translation, then go lazy (kernel thread takes over). *)
      Waitq.Completion.wait phase2;
      (* After the initiator's flush: we were skipped, entry is stale but
         we are in lazy mode and must sync on exit. *)
      Sched.exit_lazy m ~cpu:14;
      check bool_t "synced on lazy exit" false
        (Tlb.mem (tlb_of m 14) ~pcid:(user_pcid_of m 14) ~vpn:!vpn_box));
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 1_000;
      let vpn = map_pages m mm ~pages:1 in
      vpn_box := vpn;
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      Tlb.insert (tlb_of m 14)
        {
          Tlb.vpn;
          pfn = 0;
          pcid = user_pcid_of m 14;
          size = Tlb.Four_k;
          global = false;
          writable = true;
          fractured = false;
              ck_ver = -1;
        };
      Sched.enter_lazy m ~cpu:14;
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
      check int_t "no IPI sent" 0 (Apic.ipis_sent m.Machine.apic);
      check int_t "lazy skip counted" 1 m.Machine.stats.Machine.ipis_skipped_lazy;
      Waitq.Completion.fire phase2);
  Kernel.run m

let test_in_context_defers_user_flush () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.in_context_flush <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:2 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:2;
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:2 ();
      (* Kernel PCID flushed eagerly; user PCID deferred. *)
      check bool_t "user entry still cached" true
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn);
      (match (Machine.percpu m 0).Percpu.pending_user with
      | Percpu.Ranged info -> check int_t "pending range" 2 info.Flush_info.pages
      | Percpu.Full_flush | Percpu.No_flush -> Alcotest.fail "expected deferred range");
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true;
      check bool_t "flushed at kernel exit" false
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn));
  Kernel.run m;
  check bool_t "deferral counted" true (m.Machine.stats.Machine.in_context_deferrals >= 1)

let test_in_context_no_stack_full_flush () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.in_context_flush <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:2 in
      let other = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:2;
      warm m ~cpu:0 ~start_vpn:other ~pages:1;
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:2 ();
      (* Returning without a stack (IRET path): the whole user PCID goes. *)
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:false;
      check bool_t "unrelated user entry also gone" false
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn:other));
  Kernel.run m

let test_in_context_eager_when_tables_freed () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.in_context_flush <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:2 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:2;
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:2
        ~freed_tables:true ();
      check bool_t "user entry flushed eagerly" false
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn);
      check bool_t "nothing pending" true
        ((Machine.percpu m 0).Percpu.pending_user = Percpu.No_flush));
  Kernel.run m

let test_batching_defers_and_flushes_at_release () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.userspace_batching <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:4 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:4;
      let pcpu = Machine.percpu m 0 in
      pcpu.Percpu.batched_mode <- true;
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn:(vpn + 1);
      check int_t "two deferred" 2 (List.length pcpu.Percpu.batch);
      check bool_t "nothing flushed yet" true
        (Tlb.mem (tlb_of m 0) ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid) ~vpn
        || Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn);
      Shootdown.flush_batched m ~from:0 ~mm;
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true;
      check bool_t "flushed at release" false
        (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn);
      check bool_t "batch drained" true (pcpu.Percpu.batch = []);
      check bool_t "batched mode off" false pcpu.Percpu.batched_mode);
  Kernel.run m;
  check int_t "deferrals counted" 2 m.Machine.stats.Machine.batched_deferrals

let test_batching_overflow_merges () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.userspace_batching <- true;
  opts.Opts.batch_slots <- 2;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:6 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:6;
      let pcpu = Machine.percpu m 0 in
      pcpu.Percpu.batched_mode <- true;
      for i = 0 to 4 do
        Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn:(vpn + i)
      done;
      check bool_t "capped at 2 slots" true (List.length pcpu.Percpu.batch <= 2);
      check bool_t "overflow flagged" true pcpu.Percpu.batch_overflowed;
      (* Overflow flushed the oldest entries eagerly. *)
      check bool_t "early pages already flushed" false
        (Tlb.mem (tlb_of m 0) ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid) ~vpn);
      Shootdown.flush_batched m ~from:0 ~mm;
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true;
      (* Every page must still end up flushed (merged ranges). *)
      for i = 0 to 4 do
        check bool_t
          (Printf.sprintf "page %d flushed" i)
          false
          (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn:(vpn + i))
      done);
  Kernel.run m

let test_batched_target_skipped () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.userspace_batching <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  let phase2 = Waitq.Completion.create m.Machine.engine in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"batched-side" (fun () ->
      let pcpu = Machine.percpu m 14 in
      pcpu.Percpu.batched_mode <- true;
      Waitq.Completion.wait phase2;
      (* The §4.2 exit barrier. *)
      pcpu.Percpu.batched_mode <- false;
      Shootdown.check_and_sync_tlb m ~cpu:14;
      check bool_t "synced via barrier" false
        (Tlb.mem (tlb_of m 14) ~pcid:(Percpu.kernel_pcid pcpu.Percpu.curr_asid) ~vpn:1));
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 1_000;
      let vpn = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
      check int_t "no IPI to batched target" 0 (Apic.ipis_sent m.Machine.apic);
      check int_t "skip counted" 1 m.Machine.stats.Machine.ipis_skipped_batched;
      Waitq.Completion.fire phase2);
  Kernel.run m

let test_batched_target_not_skipped_for_freed_tables () =
  let opts = Opts.baseline ~safe:true in
  opts.Opts.userspace_batching <- true;
  let m = make ~opts () in
  let mm = Machine.new_mm m in
  let stop = ref false in
  Kernel.spawn_user m ~cpu:14 ~mm ~name:"batched-side" (fun () ->
      (Machine.percpu m 14).Percpu.batched_mode <- true;
      let cpu_t = Machine.cpu m 14 in
      while not !stop do
        Cpu.compute cpu_t ~quantum:100 100
      done);
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 1_000;
      let vpn = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:1
        ~freed_tables:true ();
      check int_t "IPI still sent when tables freed" 1 (Apic.ipis_sent m.Machine.apic);
      stop := true);
  Kernel.run m

let test_concurrent_in_context_interplay () =
  let opts = Opts.all_general ~safe:true in
  let deferred = ref false in
  let _m =
    with_pair ~opts ~responder:14 (fun m mm ->
        let vpn = map_pages m mm ~pages:10 in
        warm m ~cpu:0 ~start_vpn:vpn ~pages:10;
        Shootdown.flush_tlb_mm_range m ~from:0 ~mm ~start_vpn:vpn ~pages:10 ();
        (* With 10 user PTEs and a same/cross-socket ack latency the
           initiator cannot INVPCID them all before the first ack: a
           remainder must be deferred. *)
        deferred :=
          (match (Machine.percpu m 0).Percpu.pending_user with
          | Percpu.Ranged _ | Percpu.Full_flush -> true
          | Percpu.No_flush -> false);
        Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true)
  in
  check bool_t "remainder deferred after first ack" true !deferred

let test_flush_tlb_mm_full () =
  let m = make () in
  let mm = Machine.new_mm m in
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"solo" (fun () ->
      let vpn = map_pages m mm ~pages:3 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:3;
      Shootdown.flush_tlb_mm m ~from:0 ~mm;
      Shootdown.flush_pending_user m ~cpu:0 ~has_stack:true;
      for i = 0 to 2 do
        check bool_t "gone" false
          (Tlb.mem (tlb_of m 0) ~pcid:(user_pcid_of m 0) ~vpn:(vpn + i))
      done);
  Kernel.run m

let test_multiple_responders_all_flushed () =
  let m = make ~opts:(Opts.all_general ~safe:true) () in
  let mm = Machine.new_mm m in
  let responders = [ 1; 2; 14; 15 ] in
  let stop = ref false in
  List.iter
    (fun cpu ->
      Kernel.spawn_user m ~cpu ~mm ~name:(Printf.sprintf "resp%d" cpu) (fun () ->
          let cpu_t = Machine.cpu m cpu in
          while not !stop do
            Cpu.compute cpu_t ~quantum:100 100
          done))
    responders;
  Kernel.spawn_user m ~cpu:0 ~mm ~name:"initiator" (fun () ->
      Machine.delay m 2_000;
      let vpn = map_pages m mm ~pages:1 in
      warm m ~cpu:0 ~start_vpn:vpn ~pages:1;
      List.iter
        (fun cpu ->
          Tlb.insert (tlb_of m cpu)
            {
              Tlb.vpn;
              pfn = 0;
              pcid = user_pcid_of m cpu;
              size = Tlb.Four_k;
              global = false;
              writable = true;
              fractured = false;
              ck_ver = -1;
            })
        responders;
      Shootdown.flush_tlb_page m ~from:0 ~mm ~vpn;
      Machine.delay m 20_000;
      List.iter
        (fun cpu ->
          check bool_t
            (Printf.sprintf "cpu%d flushed" cpu)
            false
            (Tlb.mem (tlb_of m cpu) ~pcid:(user_pcid_of m cpu) ~vpn))
        responders;
      check int_t "four IPIs" 4 (Apic.ipis_sent m.Machine.apic);
      stop := true);
  Kernel.run m

let suite =
  [
    Alcotest.test_case "local-only: no IPI" `Quick test_local_only_no_ipi;
    Alcotest.test_case "shootdown flushes remote TLB" `Quick test_shootdown_flushes_remote;
    Alcotest.test_case "concurrent < baseline" `Quick test_concurrent_faster_than_baseline;
    Alcotest.test_case "early ack < concurrent" `Quick test_early_ack_faster_still;
    Alcotest.test_case "all4 < baseline at 1 PTE" `Quick test_all4_faster_than_baseline_1pte;
    Alcotest.test_case "early ack off when tables freed" `Quick test_early_ack_disabled_when_tables_freed;
    Alcotest.test_case "cacheline consolidation reduces transfers" `Quick test_cacheline_consolidation_reduces_transfers;
    Alcotest.test_case "over-threshold becomes full flush" `Quick test_full_flush_over_threshold;
    Alcotest.test_case "responder skips seen generations" `Quick test_responder_gen_skip;
    Alcotest.test_case "gen gap fast-forwards via full flush" `Quick test_responder_gen_fast_forward_full;
    Alcotest.test_case "lazy CPU skipped, syncs on exit" `Quick test_lazy_cpu_skipped_and_syncs;
    Alcotest.test_case "in-context defers user flush" `Quick test_in_context_defers_user_flush;
    Alcotest.test_case "in-context: no stack -> full" `Quick test_in_context_no_stack_full_flush;
    Alcotest.test_case "in-context eager on freed tables" `Quick test_in_context_eager_when_tables_freed;
    Alcotest.test_case "batching defers, flushes at release" `Quick test_batching_defers_and_flushes_at_release;
    Alcotest.test_case "batching overflow merges" `Quick test_batching_overflow_merges;
    Alcotest.test_case "batched target skipped" `Quick test_batched_target_skipped;
    Alcotest.test_case "freed tables: batched target still IPI'd" `Quick test_batched_target_not_skipped_for_freed_tables;
    Alcotest.test_case "concurrent+in-context interplay" `Quick test_concurrent_in_context_interplay;
    Alcotest.test_case "flush_tlb_mm full" `Quick test_flush_tlb_mm_full;
    Alcotest.test_case "multiple responders all flushed" `Quick test_multiple_responders_all_flushed;
  ]
