(* Unit tests for the simulation substrate: Rng, Stats, Heap, Engine,
   Process, Waitq, Trace. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:99L and b = Rng.create ~seed:99L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_matters () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  check bool_t "different streams" true (Rng.next a <> Rng.next b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check bool_t "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create ~seed:5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create ~seed:6L in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    check bool_t "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_bool_probability () =
  let r = Rng.create ~seed:7L in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool r ~p:0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check bool_t "close to 0.25" true (rate > 0.22 && rate < 0.28)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:1L in
  let child = Rng.split parent in
  (* Drawing from the child must not change the parent's future values. *)
  let parent2 = Rng.create ~seed:1L in
  let _ = Rng.split parent2 in
  ignore (Rng.next child);
  check Alcotest.int64 "parent unaffected by child draws" (Rng.next parent) (Rng.next parent2)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:9L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array int_t) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:10L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:100.0
  done;
  let mean = !sum /. float_of_int n in
  check bool_t "mean near 100" true (mean > 90.0 && mean < 110.0)

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:11L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.gaussian r ~mean:5.0 ~stddev:2.0
  done;
  let mean = !sum /. float_of_int n in
  check bool_t "mean near 5" true (mean > 4.8 && mean < 5.2)

(* --- Stats --- *)

let test_stats_empty () =
  let s = Stats.create () in
  check int_t "count" 0 (Stats.count s);
  check (Alcotest.float 0.0) "mean" 0.0 (Stats.mean s);
  check (Alcotest.float 0.0) "stddev" 0.0 (Stats.stddev s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check int_t "count" 8 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "min" 2.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max" 9.0 (Stats.max s);
  (* Sample stddev of this classic dataset: sqrt(32/7). *)
  check (Alcotest.float 1e-6) "stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile s 0.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "median" 50.5 (Stats.median s)

let test_stats_percentile_interpolates () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 10.0; 20.0 ];
  check (Alcotest.float 1e-9) "p50 between" 15.0 (Stats.percentile s 50.0)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  Stats.merge_into a b;
  check int_t "count" 4 (Stats.count a);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean a)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:10 in
  Stats.Histogram.add h 5.0;
  Stats.Histogram.add h 15.0;
  Stats.Histogram.add h 15.5;
  Stats.Histogram.add h 999.0;
  (* counted as overflow, not folded into the last bucket *)
  Stats.Histogram.add h (-5.0);
  (* counted as underflow, not folded into the first bucket *)
  let counts = Stats.Histogram.counts h in
  check int_t "bucket 0" 1 counts.(0);
  check int_t "bucket 1" 2 counts.(1);
  check int_t "bucket 9" 0 counts.(9);
  check int_t "underflow" 1 (Stats.Histogram.underflow h);
  check int_t "overflow" 1 (Stats.Histogram.overflow h);
  check int_t "total" 5 (Stats.Histogram.total h)

let test_stats_empty_options () =
  let s = Stats.create () in
  check (Alcotest.option (Alcotest.float 0.0)) "min_opt" None (Stats.min_opt s);
  check (Alcotest.option (Alcotest.float 0.0)) "max_opt" None (Stats.max_opt s);
  check
    (Alcotest.option (Alcotest.float 0.0))
    "p50_opt" None
    (Stats.percentile_opt s 50.0);
  check (Alcotest.option (Alcotest.float 0.0)) "median_opt" None (Stats.median_opt s);
  check Alcotest.string "pp marks empty" "n=0 (no samples)"
    (Format.asprintf "%a" Stats.pp s)

(* NaN must not poison min/max or make percentile order unspecified:
   Float.compare is total, NaN sorts below every number. Infinities pass
   through as ordinary extremes. *)
let test_stats_nan_inf () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; Float.nan; 3.0 ];
  check int_t "count includes nan" 3 (Stats.count s);
  check (Alcotest.float 1e-9) "min ignores nan" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max ignores nan" 3.0 (Stats.max s);
  (* sorted = [nan; 1; 3]: deterministic, so p100 = 3 and p50 = 1. *)
  check (Alcotest.float 1e-9) "p100 with nan present" 3.0 (Stats.percentile s 100.0);
  check (Alcotest.float 1e-9) "p50 with nan present" 1.0 (Stats.percentile s 50.0);
  let i = Stats.create () in
  List.iter (Stats.add i) [ 1.0; Float.infinity ];
  check Alcotest.bool "mean is +inf" true (Stats.mean i = Float.infinity);
  check Alcotest.bool "max is +inf" true (Stats.max i = Float.infinity);
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~buckets:2 in
  Stats.Histogram.add h Float.nan;
  Stats.Histogram.add h Float.infinity;
  Stats.Histogram.add h Float.neg_infinity;
  check int_t "hist nan" 1 (Stats.Histogram.nan_count h);
  check int_t "hist +inf overflows" 1 (Stats.Histogram.overflow h);
  check int_t "hist -inf underflows" 1 (Stats.Histogram.underflow h);
  check (Alcotest.array int_t) "bins untouched" [| 0; 0 |] (Stats.Histogram.counts h)

(* Past [cap] retained samples the percentile buffer thins by systematic
   stride-doubling: bounded memory, still a pure function of the stream. *)
let test_stats_reservoir_bounded_deterministic () =
  let fill () =
    let s = Stats.create ~cap:8 () in
    for i = 1 to 1000 do
      Stats.add s (float_of_int i)
    done;
    s
  in
  let s = fill () in
  check int_t "count unbounded" 1000 (Stats.count s);
  check Alcotest.bool "retained bounded" true (Stats.retained s <= 8);
  check Alcotest.bool "marked subsampled" false (Stats.exact_percentiles s);
  check (Alcotest.float 1e-9) "moments stay exact: mean" 500.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "min exact" 1.0 (Stats.min s);
  check (Alcotest.float 1e-9) "max exact" 1000.0 (Stats.max s);
  let s' = fill () in
  check (Alcotest.float 0.0) "same stream, same p50" (Stats.percentile s 50.0)
    (Stats.percentile s' 50.0);
  check (Alcotest.float 0.0) "same stream, same p99" (Stats.percentile s 99.0)
    (Stats.percentile s' 99.0);
  (* Below the cap nothing is dropped: percentiles stay exact. *)
  let e = Stats.create ~cap:8 () in
  List.iter (Stats.add e) [ 4.0; 1.0; 3.0; 2.0 ];
  check Alcotest.bool "exact below cap" true (Stats.exact_percentiles e);
  check (Alcotest.float 1e-9) "exact p50" 2.5 (Stats.percentile e 50.0)

(* merge_into must agree with having streamed everything into one
   accumulator: exact for the moments (Chan's formula) and for the
   percentiles while both sides are below cap. *)
let test_stats_merge_matches_single_stream () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  for i = 1 to 50 do
    Stats.add a (float_of_int i);
    Stats.add whole (float_of_int i)
  done;
  for i = 51 to 100 do
    Stats.add b (float_of_int i);
    Stats.add whole (float_of_int i)
  done;
  Stats.merge_into a b;
  check int_t "count" (Stats.count whole) (Stats.count a);
  check (Alcotest.float 1e-9) "mean" (Stats.mean whole) (Stats.mean a);
  check (Alcotest.float 1e-6) "stddev" (Stats.stddev whole) (Stats.stddev a);
  check (Alcotest.float 0.0) "min" (Stats.min whole) (Stats.min a);
  check (Alcotest.float 0.0) "max" (Stats.max whole) (Stats.max a);
  List.iter
    (fun p ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "p%.0f" p)
        (Stats.percentile whole p) (Stats.percentile a p))
    [ 0.0; 25.0; 50.0; 90.0; 99.0; 100.0 ]

let test_histogram_merge () =
  let a = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:10 in
  let b = Stats.Histogram.create ~lo:0.0 ~hi:100.0 ~buckets:10 in
  List.iter (Stats.Histogram.add a) [ 5.0; 15.0; -1.0 ];
  List.iter (Stats.Histogram.add b) [ 5.0; 200.0; Float.nan ];
  Stats.Histogram.merge_into a b;
  let counts = Stats.Histogram.counts a in
  check int_t "bucket 0 summed" 2 counts.(0);
  check int_t "bucket 1" 1 counts.(1);
  check int_t "underflow" 1 (Stats.Histogram.underflow a);
  check int_t "overflow" 1 (Stats.Histogram.overflow a);
  check int_t "nan" 1 (Stats.Histogram.nan_count a);
  check int_t "total" 6 (Stats.Histogram.total a);
  let c = Stats.Histogram.create ~lo:0.0 ~hi:50.0 ~buckets:10 in
  Alcotest.check_raises "config mismatch rejected"
    (Invalid_argument "Histogram.merge_into: bucket configurations differ") (fun () ->
      Stats.Histogram.merge_into a c)

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  check (Alcotest.list int_t) "sorted output" [ 1; 2; 3; 5; 7; 8; 9 ] (List.rev !out)

let test_heap_peek () =
  let h = Heap.create ~compare in
  check (Alcotest.option int_t) "empty peek" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  check (Alcotest.option int_t) "peek min" (Some 2) (Heap.peek h);
  check int_t "length unchanged" 2 (Heap.length h)

let test_heap_random_against_sort () =
  let r = Rng.create ~seed:13L in
  let h = Heap.create ~compare in
  let values = List.init 500 (fun _ -> Rng.int r 10_000) in
  List.iter (Heap.push h) values;
  let expected = List.sort compare values in
  let rec drain acc =
    match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
  in
  check (Alcotest.list int_t) "matches sort" expected (drain [])

let test_heap_clear () =
  let h = Heap.create ~compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check bool_t "empty after clear" true (Heap.is_empty h)

(* --- Engine --- *)

let test_engine_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~delay:20 (fun () -> log := 20 :: !log);
  Engine.run e;
  check (Alcotest.list int_t) "fired in time order" [ 10; 20; 30 ] (List.rev !log);
  check int_t "clock at last event" 30 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:7 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  check (Alcotest.list int_t) "insertion order at ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:5 (fun () -> log := "b" :: !log));
  Engine.run e;
  check (Alcotest.list Alcotest.string) "nested fires" [ "a"; "b" ] (List.rev !log);
  check int_t "time advanced" 10 (Engine.now e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule_at: time 5 is before now 10") (fun () ->
      Engine.schedule_at e ~time:5 (fun () -> ()))

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired))
    [ 10; 20; 30 ];
  Engine.run_until e ~time:20;
  check (Alcotest.list int_t) "only up to 20" [ 10; 20 ] (List.rev !fired);
  check int_t "one pending" 1 (Engine.pending e)

(* --- Engine: packed-key boundaries --- *)

(* The priority key packs (time, seq) into one int; [max_time] is the last
   time the time field can hold. Scheduling past it must be rejected, and
   landing exactly on it must work. *)
let test_engine_clock_overflow_rejected () =
  let e = Engine.create () in
  check bool_t "max_time is the 38-bit boundary" true
    (Engine.max_time = max_int lsr 25);
  Alcotest.check_raises "schedule_at past max_time"
    (Invalid_argument
       (Printf.sprintf "Engine.schedule_at: time %d overflows the clock"
          (Engine.max_time + 1)))
    (fun () -> Engine.schedule_at e ~time:(Engine.max_time + 1) (fun () -> ()));
  Alcotest.check_raises "run_until past max_time"
    (Invalid_argument
       (Printf.sprintf "Engine.run_until: time %d overflows the clock"
          (Engine.max_time + 1)))
    (fun () -> Engine.run_until e ~time:(Engine.max_time + 1));
  let ran = ref false in
  Engine.schedule_at e ~time:Engine.max_time (fun () -> ran := true);
  Engine.run e;
  check bool_t "boundary event ran" true !ran;
  check int_t "clock lands on max_time" Engine.max_time (Engine.now e)

(* The suspend-free fast path must refuse to move [now] past [max_time]
   (the slow path then reports the overflow via [schedule_at]). *)
let test_engine_try_advance_clock_boundary () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:(Engine.max_time - 5) (fun () -> ());
  Engine.run e;
  check bool_t "advance inside the bound" true (Engine.try_advance e ~cycles:3);
  check int_t "advanced" (Engine.max_time - 2) (Engine.now e);
  check bool_t "advance past the bound declined" false
    (Engine.try_advance e ~cycles:10);
  check int_t "clock unchanged on decline" (Engine.max_time - 2) (Engine.now e);
  check bool_t "advance onto the boundary" true (Engine.try_advance e ~cycles:2);
  check int_t "at max_time" Engine.max_time (Engine.now e);
  check bool_t "no advance past max_time" false (Engine.try_advance e ~cycles:1);
  Alcotest.check_raises "negative cycles"
    (Invalid_argument "Engine.try_advance: negative cycles") (fun () ->
      ignore (Engine.try_advance e ~cycles:(-1) : bool))

(* Drive [seq] past its 25-bit field: renumbering must preserve FIFO order
   for same-time events and keep far-pending events intact. *)
let test_engine_seq_renumber_preserves_fifo () =
  let e = Engine.create () in
  let far = ref false in
  Engine.schedule e ~delay:1_000_000_000 (fun () -> far := true);
  let seq_limit = 1 lsl 25 in
  let ran = ref 0 in
  let batch = 4096 in
  let rounds = (seq_limit / batch) + 2 in
  for _ = 1 to rounds do
    for _ = 1 to batch do
      Engine.schedule e ~delay:1 (fun () -> incr ran)
    done;
    Engine.run_until e ~time:(Engine.now e + 1)
  done;
  check int_t "every event ran across the renumber" (rounds * batch) !ran;
  let log = ref [] in
  List.iter
    (fun i -> Engine.schedule e ~delay:5 (fun () -> log := i :: !log))
    [ 1; 2; 3 ];
  Engine.run e;
  check bool_t "far event survived the renumber" true !far;
  check (Alcotest.list int_t) "FIFO after renumber" [ 1; 2; 3 ] (List.rev !log)

(* --- Process / Waitq --- *)

let test_process_delay_advances_time () =
  let e = Engine.create () in
  let finished = ref (-1) in
  Process.spawn e ~name:"p" (fun () ->
      Process.delay e 100;
      Process.delay e 50;
      finished := Engine.now e);
  Engine.run e;
  check int_t "150 cycles" 150 !finished

let test_process_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  Process.spawn e ~name:"a" (fun () ->
      Process.delay e 10;
      log := ("a", Engine.now e) :: !log;
      Process.delay e 20;
      log := ("a2", Engine.now e) :: !log);
  Process.spawn e ~name:"b" (fun () ->
      Process.delay e 15;
      log := ("b", Engine.now e) :: !log);
  Engine.run e;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int_t))
    "interleaved order"
    [ ("a", 10); ("b", 15); ("a2", 30) ]
    (List.rev !log)

let test_process_failure_propagates () =
  let e = Engine.create () in
  Process.spawn e ~name:"boom" (fun () ->
      Process.delay e 5;
      failwith "bang");
  (match Engine.run e with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Process.Process_failure (name, Failure msg) ->
      check Alcotest.string "process name" "boom" name;
      check Alcotest.string "message" "bang" msg
  | exception e -> raise e);
  ()

let test_process_self_name () =
  let e = Engine.create () in
  let seen = ref "" in
  Process.spawn e ~name:"worker-7" (fun () ->
      Process.delay e 1;
      seen := Process.self_name e);
  Engine.run e;
  check Alcotest.string "name visible after resume" "worker-7" !seen

let test_waitq_signal_all () =
  let e = Engine.create () in
  let q = Waitq.create e in
  let woken = ref [] in
  for i = 1 to 3 do
    Process.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
        Waitq.wait q;
        woken := i :: !woken)
  done;
  Process.spawn e ~name:"signaller" (fun () ->
      Process.delay e 100;
      Waitq.signal_all q);
  Engine.run e;
  check int_t "all woken" 3 (List.length !woken);
  check int_t "no waiters left" 0 (Waitq.waiters q)

let test_waitq_signal_one_fifo () =
  let e = Engine.create () in
  let q = Waitq.create e in
  let woken = ref [] in
  for i = 1 to 3 do
    Process.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
        Waitq.wait q;
        woken := i :: !woken)
  done;
  Process.spawn e ~name:"signaller" (fun () ->
      Process.delay e 10;
      Waitq.signal_one q;
      Process.delay e 10;
      Waitq.signal_one q);
  Engine.run e;
  check (Alcotest.list int_t) "FIFO wakeups" [ 1; 2 ] (List.rev !woken);
  check int_t "one still waiting" 1 (Waitq.waiters q)

let test_completion () =
  let e = Engine.create () in
  let c = Waitq.Completion.create e in
  let order = ref [] in
  Process.spawn e ~name:"waiter" (fun () ->
      Waitq.Completion.wait c;
      order := "woken" :: !order;
      (* A second wait after firing returns immediately. *)
      Waitq.Completion.wait c;
      order := "again" :: !order);
  Process.spawn e ~name:"firer" (fun () ->
      Process.delay e 42;
      Waitq.Completion.fire c);
  Engine.run e;
  check bool_t "fired" true (Waitq.Completion.is_fired c);
  check (Alcotest.list Alcotest.string) "ordering" [ "woken"; "again" ] (List.rev !order)

(* --- Trace --- *)

let test_trace_disabled_by_default () =
  let e = Engine.create () in
  let t = Trace.create e in
  Trace.emit t ~actor:"x" "hello";
  check int_t "no records" 0 (List.length (Trace.records t))

let test_trace_records_in_order () =
  let e = Engine.create () in
  let t = Trace.create ~enabled:true e in
  Process.spawn e ~name:"p" (fun () ->
      Trace.emit t ~actor:"p" "first";
      Process.delay e 10;
      Trace.emitf t ~actor:"p" "second at %d" (Engine.now e));
  Engine.run e;
  match Trace.records t with
  | [ r1; r2 ] ->
      check int_t "t0" 0 r1.Trace.time;
      check int_t "t10" 10 r2.Trace.time;
      check Alcotest.string "fmt" "second at 10" (Trace.event_text r2.Trace.event)
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records)

let test_trace_typed_events () =
  let e = Engine.create () in
  let t = Trace.create ~enabled:true e in
  Trace.event t ~cpu:3 (Trace.Ipi_send { seq = 7; target = 5 });
  Trace.event t ~cpu:5 (Trace.Ipi_ack { seq = 7; initiator = 3; early = true });
  (match Trace.records t with
  | [ s; a ] ->
      check int_t "sender cpu" 3 s.Trace.cpu;
      check Alcotest.string "send text" "IPI -> cpu5 (seq 7)" (Trace.event_text s.Trace.event);
      check Alcotest.string "ack text" "early ack to cpu3 (seq 7)"
        (Trace.event_text a.Trace.event)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs));
  check bool_t "emitf is Msg" true
    (Trace.emitf t ~actor:"x" "n=%d" 4;
     match List.rev (Trace.records t) with
     | { Trace.event = Trace.Msg "n=4"; cpu = -1; _ } :: _ -> true
     | _ -> false)

let test_trace_ring_buffer_cap () =
  let e = Engine.create () in
  let t = Trace.create ~enabled:true ~max_records:4 e in
  for i = 1 to 10 do
    Trace.emitf t ~actor:"p" "ev%d" i
  done;
  check int_t "capped length" 4 (Trace.length t);
  check int_t "dropped count" 6 (Trace.dropped t);
  check
    (Alcotest.list Alcotest.string)
    "keeps newest, oldest-first"
    [ "ev7"; "ev8"; "ev9"; "ev10" ]
    (List.map (fun r -> Trace.event_text r.Trace.event) (Trace.records t));
  (* Lifting the cap resumes unbounded growth without losing the tail. *)
  Trace.set_max_records t None;
  Trace.emit t ~actor:"p" "ev11";
  check int_t "grows again" 5 (Trace.length t);
  Trace.clear t;
  check int_t "clear resets length" 0 (Trace.length t);
  check int_t "clear resets dropped" 0 (Trace.dropped t)

(* --- Event pool model test ---

   Randomized schedule / cancel / fire / recycle sequences against a
   simple model, checking the pooled-event invariants end to end:

   - every non-cancelled scheduled callback fires exactly once (exact
     multiset of ids, children included);
   - fire times are the scheduled times, delivered monotonically, and
     same-time top-level events keep insertion order;
   - [cancel] returns [true] iff the model says the event is still
     pending — including cancels issued from inside running callbacks;
   - a handle kept across the event's firing (so its pool slot has been
     recycled by later schedules) is stale: [cancel] returns [false] and
     the slot's new occupant still fires.

   The rng only drives test-case generation; the engine itself stays
   deterministic, so a failure reproduces from the fixed seed. *)
let test_engine_pool_model () =
  let rng = Rng.create ~seed:0xd15ea5eL in
  let e = Engine.create () in
  let scheduled = ref [] (* (id, time) of everything ever scheduled *)
  and cancelled = ref []
  and fired = ref [] (* (id, time) in fire order, newest first *)
  and live = Hashtbl.create 64 (* id -> scheduled fire time, pending only *)
  and handles = ref [] (* (id, handle) for every cancellable, kept forever *)
  and top_seq = ref [] (* (time, insertion index, id) of top-level events *)
  and next_id = ref 0
  and gop = ref 0 (* global insertion counter, never reset *) in
  let fresh_id time =
    let id = !next_id in
    incr next_id;
    scheduled := (id, time) :: !scheduled;
    Hashtbl.replace live id time;
    id
  in
  let fire id =
    let time = Engine.now e in
    check bool_t "fires at its scheduled time" true (Hashtbl.find live id = time);
    Hashtbl.remove live id;
    fired := (id, time) :: !fired
  in
  (* Tagged dispatch: one shared handler, the event's [a] is the model id. *)
  let tag = Engine.register_handler e (fun a _b -> fire a) in
  let try_cancel (id, h) =
    let was_live = Hashtbl.mem live id in
    check bool_t "cancel true iff pending" was_live (Engine.cancel e h);
    if was_live then begin
      Hashtbl.remove live id;
      cancelled := (id, ()) :: !cancelled
    end
  in
  let n_ops = 400 in
  for round = 1 to 4 do
    ignore round;
    for _op = 1 to n_ops do
      incr gop;
      let op = !gop in
      let now = Engine.now e in
      match Rng.int rng 10 with
      | 0 | 1 | 2 ->
          let d = Rng.int rng 50 in
          let id = fresh_id (now + d) in
          top_seq := (now + d, op, id) :: !top_seq;
          Engine.schedule e ~delay:d (fun () -> fire id)
      | 3 | 4 ->
          let d = Rng.int rng 50 in
          let id = fresh_id (now + d) in
          top_seq := (now + d, op, id) :: !top_seq;
          Engine.schedule_tag e ~delay:d ~tag ~a:id ~b:0
      | 5 | 6 ->
          let d = Rng.int rng 50 in
          let id = fresh_id (now + d) in
          top_seq := (now + d, op, id) :: !top_seq;
          handles :=
            (id, Engine.schedule_cancellable e ~delay:d (fun () -> fire id))
            :: !handles
      | 7 ->
          (* A parent whose callback schedules children at fire time —
             delay 0 children land in the same-cycle batch path. *)
          let d = Rng.int rng 50 and d1 = Rng.int rng 4 and d2 = Rng.int rng 4 in
          let id = fresh_id (now + d) in
          top_seq := (now + d, op, id) :: !top_seq;
          Engine.schedule e ~delay:d (fun () ->
              fire id;
              let c1 = fresh_id (Engine.now e + d1)
              and c2 = fresh_id (Engine.now e + d2) in
              Engine.schedule e ~delay:d1 (fun () -> fire c1);
              Engine.schedule_tag e ~delay:d2 ~tag ~a:c2 ~b:0)
      | 8 ->
          (* A callback that cancels a random cancellable when it runs:
             the in-flight cancel path. Which handle is picked is fixed
             at schedule time; it may well have fired by then — exactly
             the staleness the generation stamp must catch. *)
          let d = Rng.int rng 50 in
          let id = fresh_id (now + d) in
          top_seq := (now + d, op, id) :: !top_seq;
          let victims = !handles in
          let pick = if victims = [] then None
            else Some (List.nth victims (Rng.int rng (List.length victims))) in
          Engine.schedule e ~delay:d (fun () ->
              fire id;
              Option.iter try_cancel pick)
      | _ ->
          (* Cancel from outside the engine, pending or stale alike. *)
          (match !handles with
          | [] -> ()
          | hs -> try_cancel (List.nth hs (Rng.int rng (List.length hs))))
    done;
    Engine.run e;
    (* Queue drained: recycled records from this round are reused by the
       next round's schedules, and every handle in [handles] is now
       stale — the next round's outside-cancels must all answer false. *)
    check int_t "queue drained" 0 (Engine.pending e)
  done;
  (* Every old handle is stale after its event fired or was cancelled. *)
  List.iter (fun (id, h) ->
      check bool_t "retained handle is stale" false (Engine.cancel e h);
      ignore id)
    !handles;
  (* Exact multiset: fired = scheduled - cancelled, each exactly once. *)
  let sorted l = List.sort compare (List.map fst l) in
  let expected =
    let cset = Hashtbl.create 64 in
    List.iter (fun (id, ()) -> Hashtbl.replace cset id ()) !cancelled;
    List.filter (fun id -> not (Hashtbl.mem cset id)) (sorted !scheduled)
  in
  check (Alcotest.list int_t) "fired exactly the live schedule" expected
    (sorted !fired);
  check int_t "nothing left pending" 0 (Hashtbl.length live);
  (* Delivery order: monotone in time... *)
  let in_order = List.rev !fired in
  ignore
    (List.fold_left
       (fun prev (_, t) ->
         check bool_t "fire times monotone" true (t >= prev);
         t)
       0 in_order);
  (* ... and same-time top-level events keep insertion order. *)
  let pos = Hashtbl.create 64 in
  List.iteri (fun i (id, _) -> Hashtbl.replace pos id i) in_order;
  let tops = List.sort compare !top_seq in
  ignore
    (List.fold_left
       (fun prev (t, _, id) ->
         (match Hashtbl.find_opt pos id with
         | None -> () (* cancelled *)
         | Some i ->
             (match prev with
             | Some (pt, pi) when pt = t ->
                 check bool_t "FIFO among same-time top-level events" true (pi < i)
             | _ -> ());
             ());
         match Hashtbl.find_opt pos id with
         | None -> prev
         | Some i -> Some (t, i))
       None tops)

let suite =
  [
    Alcotest.test_case "rng: deterministic streams" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed matters" `Quick test_rng_seed_matters;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: int rejects non-positive" `Quick test_rng_int_rejects_nonpositive;
    Alcotest.test_case "rng: float in [0,1)" `Quick test_rng_float_range;
    Alcotest.test_case "rng: bernoulli rate" `Quick test_rng_bool_probability;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: shuffle is a permutation" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: gaussian mean" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "stats: empty" `Quick test_stats_empty;
    Alcotest.test_case "stats: mean/min/max/stddev" `Quick test_stats_basic;
    Alcotest.test_case "stats: percentiles" `Quick test_stats_percentile;
    Alcotest.test_case "stats: percentile interpolation" `Quick test_stats_percentile_interpolates;
    Alcotest.test_case "stats: merge" `Quick test_stats_merge;
    Alcotest.test_case "stats: histogram" `Quick test_histogram;
    Alcotest.test_case "stats: empty-series options" `Quick test_stats_empty_options;
    Alcotest.test_case "stats: nan/inf samples" `Quick test_stats_nan_inf;
    Alcotest.test_case "stats: bounded deterministic reservoir" `Quick
      test_stats_reservoir_bounded_deterministic;
    Alcotest.test_case "stats: merge = single stream" `Quick
      test_stats_merge_matches_single_stream;
    Alcotest.test_case "stats: histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "heap: pops in order" `Quick test_heap_ordering;
    Alcotest.test_case "heap: peek" `Quick test_heap_peek;
    Alcotest.test_case "heap: random vs sort" `Quick test_heap_random_against_sort;
    Alcotest.test_case "heap: clear" `Quick test_heap_clear;
    Alcotest.test_case "engine: time ordering" `Quick test_engine_time_ordering;
    Alcotest.test_case "engine: FIFO at ties" `Quick test_engine_fifo_at_same_time;
    Alcotest.test_case "engine: nested scheduling" `Quick test_engine_nested_scheduling;
    Alcotest.test_case "engine: rejects the past" `Quick test_engine_rejects_past;
    Alcotest.test_case "engine: run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine: clock overflow rejected" `Quick
      test_engine_clock_overflow_rejected;
    Alcotest.test_case "engine: try_advance clock boundary" `Quick
      test_engine_try_advance_clock_boundary;
    Alcotest.test_case "engine: seq renumber preserves FIFO" `Slow
      test_engine_seq_renumber_preserves_fifo;
    Alcotest.test_case "engine: randomized pool schedule/cancel/recycle model" `Quick
      test_engine_pool_model;
    Alcotest.test_case "process: delay advances time" `Quick test_process_delay_advances_time;
    Alcotest.test_case "process: interleaving" `Quick test_process_interleaving;
    Alcotest.test_case "process: failures propagate" `Quick test_process_failure_propagates;
    Alcotest.test_case "process: self name" `Quick test_process_self_name;
    Alcotest.test_case "waitq: signal_all" `Quick test_waitq_signal_all;
    Alcotest.test_case "waitq: signal_one FIFO" `Quick test_waitq_signal_one_fifo;
    Alcotest.test_case "waitq: completion" `Quick test_completion;
    Alcotest.test_case "trace: disabled is no-op" `Quick test_trace_disabled_by_default;
    Alcotest.test_case "trace: records in order" `Quick test_trace_records_in_order;
    Alcotest.test_case "trace: typed events" `Quick test_trace_typed_events;
    Alcotest.test_case "trace: ring-buffer cap" `Quick test_trace_ring_buffer_cap;
  ]
