; tlblint allowlist — audited grants for intentional rule hits (DESIGN.md §11).
; Entry forms:
;   (allow <rule> (module <Modname>) "reason")
;   (allow <rule> (file <path-suffix>) "reason")
;   (allow <rule> (file <path-suffix>) (line <n>) "reason")
; Prefer inline [@tlblint.allow "Rn"] for single sites; use this file for
; module-level sanctions that are policy, not one-off exceptions.

; R3: the two sanctioned nondeterminism wrappers.  Every stochastic draw in
; the simulator goes through the seed-deterministic Sim.Rng, and every
; domain is spawned by Sim.Domain_pool, whose plan-order reduce keeps output
; byte-identical at any -j.
(allow R3 (module Rng) "the sanctioned seed-deterministic RNG (splitmix64)")
(allow R3 (module Domain_pool)
  "the sanctioned Domain.spawn wrapper; deterministic plan-order reduce")

; R3: wall-clock reads that feed perf *measurements* (BENCH_PERF.json,
; per-experiment elapsed lines), never simulated state or figure output.
(allow R3 (file lib/workloads/shard.ml)
  "Unix.gettimeofday measures wall spans for BENCH_PERF.json only")
(allow R3 (file bench/main.ml)
  "harness elapsed-time reporting on stderr; not simulation input")
