(* tlblint fixture: every binding below must fire R1 (poly-compare). *)

let list_eq (a : int list) (b : int list) = a = b
let list_ne (a : int list) (b : int list) = a <> b
let pair_cmp (a : int * int) (b : int * int) = compare a b
let pair_min (a : int * int) (b : int * int) = Stdlib.min a b
let hash_it (x : string list) = Hashtbl.hash x
let phys_nil (a : int list) = a == []
