(* tlblint fixture: immediate-type comparisons and suppressed sites — silent. *)

type color = Red | Green | Blue

let int_eq (a : int) (b : int) = a = b
let color_eq (a : color) (b : color) = a = b
let char_cmp (a : char) (b : char) = compare a b
let bool_min (a : bool) (b : bool) = Stdlib.min a b
let[@tlblint.allow "R1"] suppressed_binding (a : int list) (b : int list) = a = b
let suppressed_expr (a : int list) (b : int list) = ((a = b) [@tlblint.allow "R1"])
