(* tlblint fixture: hash-order iteration escaping unsorted must fire R2. *)

let keys (tbl : (int, string) Hashtbl.t) = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let dump (tbl : (int, string) Hashtbl.t) = Hashtbl.iter (fun _ v -> print_endline v) tbl
