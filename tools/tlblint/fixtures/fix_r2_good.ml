(* tlblint fixture: sorted or justified-suppressed iteration — silent. *)

let keys_sorted (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

(* Commutative count: hash order cannot leak into the result. *)
let[@tlblint.allow "R2"] size (tbl : (int, string) Hashtbl.t) =
  Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0
