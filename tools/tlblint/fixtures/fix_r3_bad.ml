(* tlblint fixture: raw nondeterminism sources must fire R3. *)

let roll () = Random.int 6

let now () = Unix.gettimeofday ()

let fork_off f = Domain.spawn f
