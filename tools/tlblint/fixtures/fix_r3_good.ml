(* tlblint fixture: deterministic state and suppressed wall-clock — silent. *)

let counter = ref 0

let next () =
  incr counter;
  !counter

(* Wall-clock measurement only; never feeds simulated state. *)
let[@tlblint.allow "R3"] wall_clock () = Unix.gettimeofday ()
