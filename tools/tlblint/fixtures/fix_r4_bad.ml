(* tlblint fixture: unsafe access without a proven-bounds header, and a
   NaN-hazardous structural float compare — all three fire R4. *)

let first (a : int array) = Array.unsafe_get a 0

let stamp (a : float array) (v : float) = Array.unsafe_set a 0 v

let close_enough (a : float) (b : float) = a = b
