(* tlblint: proven-bounds — fixture module.  The single unsafe access is
   dominated by the explicit length check on the same line. *)

let first_opt (a : int array) =
  if Array.length a > 0 then Some (Array.unsafe_get a 0) else None

let close (a : float) (b : float) = Float.equal a b
