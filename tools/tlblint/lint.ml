(* tlblint — typed-AST determinism & hot-path sanitizer (DESIGN.md §11).

   Reads the .cmt files dune already produces, walks the typedtree with
   Tast_iterator, and reports findings with file:line spans.  Rules:

   R1 poly-compare: [=], [<>], [compare], [min], [max], [Hashtbl.hash]
      instantiated at a non-immediate type, and physical [==]/[!=] against a
      constant constructor ([], None, ...) of a non-immediate type.
   R2 unordered-iteration: [Hashtbl.iter]/[fold]/[to_seq*] whose result is
      not piped into a deterministic sort in the same expression.
   R3 nondeterminism-source: [Stdlib.Random.*], [Unix.gettimeofday]/[time],
      [Sys.time], [Domain.spawn] outside allowlisted modules.
   R4 unsafe-array discipline: [Array.unsafe_get]/[set] (and Bytes) only in
      modules carrying a "tlblint: proven-bounds" header comment; plus
      structural float comparison (NaN hazard).

   Suppression: [@tlblint.allow "R1"] on an expression or let-binding
   (space/comma-separated rule ids, or "all"), [@@@tlblint.allow "R2"] for a
   whole module, or an entry in the allow.sexp allowlist. *)

type rule = R1 | R2 | R3 | R4

let rule_name = function R1 -> "R1" | R2 -> "R2" | R3 -> "R3" | R4 -> "R4"
let all_rules = [ R1; R2; R3; R4 ]

let rule_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "r1" | "poly-compare" -> Some R1
  | "r2" | "unordered-iteration" -> Some R2
  | "r3" | "nondeterminism-source" -> Some R3
  | "r4" | "unsafe-array" -> Some R4
  | _ -> None

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : rule;
  f_msg : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col
    (rule_name f.f_rule) f.f_msg

(* Deterministic report order (dogfood: monomorphic compares only). *)
let compare_findings a b =
  let c = String.compare a.f_file b.f_file in
  if c <> 0 then c
  else
    let c = Int.compare a.f_line b.f_line in
    if c <> 0 then c
    else
      let c = Int.compare a.f_col b.f_col in
      if c <> 0 then c else String.compare (rule_name a.f_rule) (rule_name b.f_rule)

(* ----- allowlist (tools/tlblint/allow.sexp) ----- *)

type scope = Scope_module of string | Scope_file of string

type allow_entry = {
  a_rule : rule;
  a_scope : scope;
  a_line : int option; (* None = whole scope *)
  a_reason : string;
}

(* Minimal s-expression reader: atoms, "strings", (lists), ; comments. *)
type sexp = Atom of string | List of sexp list

let parse_sexps (text : string) : sexp list =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        while !pos < n && text.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let read_string () =
    advance ();
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> failwith "tlblint: unterminated string in allowlist"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char b c;
              advance ()
          | None -> failwith "tlblint: bad escape in allowlist");
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let read_atom () =
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' | '"') | None -> ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let rec read_one () : sexp =
    skip_ws ();
    match peek () with
    | None -> failwith "tlblint: unexpected end of allowlist"
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_ws ();
          match peek () with
          | Some ')' -> advance ()
          | None -> failwith "tlblint: unbalanced ( in allowlist"
          | _ ->
              items := read_one () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some '"' -> Atom (read_string ())
    | Some _ -> Atom (read_atom ())
  in
  let out = ref [] in
  let rec loop () =
    skip_ws ();
    if !pos < n then begin
      out := read_one () :: !out;
      loop ()
    end
  in
  loop ();
  List.rev !out

let allow_entry_of_sexp (s : sexp) : allow_entry =
  let fail () = failwith "tlblint: malformed allowlist entry" in
  match s with
  | List (Atom "allow" :: Atom r :: rest) ->
      let a_rule = match rule_of_string r with Some r -> r | None -> fail () in
      let scope = ref None and line = ref None and reason = ref "" in
      List.iter
        (fun item ->
          match item with
          | List [ Atom "module"; Atom m ] -> scope := Some (Scope_module m)
          | List [ Atom "file"; Atom f ] -> scope := Some (Scope_file f)
          | List [ Atom "line"; Atom l ] -> line := int_of_string_opt l
          | Atom reason_text -> reason := reason_text
          | _ -> fail ())
        rest;
      let a_scope = match !scope with Some s -> s | None -> fail () in
      { a_rule; a_scope; a_line = !line; a_reason = !reason }
  | _ -> fail ()

let load_allowlist path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  List.map allow_entry_of_sexp (parse_sexps text)

(* [file] ends with the (normalized) allowlist path, on a path-segment
   boundary, so "lib/sim/engine.ml" matches "_build/default/lib/sim/engine.ml". *)
let file_matches ~entry_path ~file =
  let fp = String.length file and ep = String.length entry_path in
  ep > 0
  && fp >= ep
  && String.equal (String.sub file (fp - ep) ep) entry_path
  && (fp = ep || file.[fp - ep - 1] = '/')

let allow_matches entries ~rule ~modname ~file ~line =
  List.exists
    (fun e ->
      e.a_rule = rule
      && (match e.a_line with None -> true | Some l -> l = line)
      &&
      match e.a_scope with
      | Scope_module m -> String.equal m modname
      | Scope_file p -> file_matches ~entry_path:p ~file)
    entries

(* ----- suppression attributes ----- *)

let contains_substring ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1))
  in
  nn > 0 && at 0

let split_words s =
  String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
  |> List.filter (fun w -> String.length w > 0)

(* Rules named by a [@tlblint.allow "..."] attribute; empty payload = all. *)
let rules_of_attributes (attrs : Parsetree.attributes) : rule list =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt "tlblint.allow") then []
      else
        match a.attr_payload with
        | PStr [] -> all_rules
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] ->
            let words = split_words s in
            if List.exists (fun w -> String.equal (String.lowercase_ascii w) "all") words
            then all_rules
            else
              List.filter_map rule_of_string words
        | _ -> all_rules)
    attrs

(* ----- typed-ident classification ----- *)

let mem_name names name = List.exists (String.equal name) names
let eq_ops = [ "Stdlib.="; "Stdlib.<>" ]
let phys_ops = [ "Stdlib.=="; "Stdlib.!=" ]
let cmp_fns = [ "Stdlib.compare"; "Stdlib.min"; "Stdlib.max" ]
let hash_fns = [ "Stdlib.Hashtbl.hash"; "Stdlib.Hashtbl.seeded_hash" ]

let hashtbl_iters =
  [
    "Stdlib.Hashtbl.iter";
    "Stdlib.Hashtbl.fold";
    "Stdlib.Hashtbl.to_seq";
    "Stdlib.Hashtbl.to_seq_keys";
    "Stdlib.Hashtbl.to_seq_values";
  ]

let sort_fns =
  [
    "Stdlib.List.sort";
    "Stdlib.List.stable_sort";
    "Stdlib.List.fast_sort";
    "Stdlib.List.sort_uniq";
    "Stdlib.Array.sort";
    "Stdlib.Array.stable_sort";
    "Stdlib.Array.fast_sort";
  ]

let pipe_ops = [ "Stdlib.|>"; "Stdlib.@@" ]

let unsafe_array_fns =
  [
    "Stdlib.Array.unsafe_get";
    "Stdlib.Array.unsafe_set";
    "Stdlib.Bytes.unsafe_get";
    "Stdlib.Bytes.unsafe_set";
  ]

let nondet_exact = [ "Unix.gettimeofday"; "Unix.time"; "Stdlib.Sys.time" ]
let nondet_prefixes = [ "Stdlib.Random."; "Stdlib.Domain.spawn" ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* ----- immediacy of an instantiation type ----- *)

type immediacy = Imm | Float_ty | Block | Poly | Unknown

let rec immediacy_of env ty =
  match Ctype.expand_head env ty with
  | exception _ -> Unknown
  | ty -> (
      match Types.get_desc ty with
      | Tconstr (p, _, _) ->
          if
            Path.same p Predef.path_int || Path.same p Predef.path_char
            || Path.same p Predef.path_bool || Path.same p Predef.path_unit
          then Imm
          else if Path.same p Predef.path_float then Float_ty
          else (
            match Env.find_type p env with
            | decl -> (
                match decl.Types.type_immediate with
                | Type_immediacy.Always | Type_immediacy.Always_on_64bits -> Imm
                | Type_immediacy.Unknown -> Block)
            | exception _ -> Unknown)
      | Tvariant row ->
          if
            List.for_all
              (fun (_, f) ->
                match Types.row_field_repr f with
                | Types.Rpresent None -> true
                | Types.Reither (true, [], _) -> true
                | _ -> false)
              (Types.row_fields row)
          then Imm
          else Block
      | Tpoly (ty, _) -> immediacy_of env ty
      | Tvar _ | Tunivar _ -> Poly
      | _ -> Block)

let type_to_string env ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> ignore env; "<type>"

(* First parameter of an (instantiated) arrow type: the comparison operand. *)
let first_param env ty =
  match Types.get_desc (Ctype.expand_head env ty) with
  | Tarrow (_, a, _, _) -> Some a
  | _ -> None
  | exception _ -> None

(* ----- the per-module walk ----- *)

type ctx = {
  mutable findings : finding list;
  mutable suppression_stack : rule list list;
  mutable module_allow : rule list;
  mutable sort_depth : int;
  enabled : rule list;
  allow : allow_entry list;
  modname : string;
  bounds_header : bool;
}

let loc_of (l : Location.t) =
  let p = l.loc_start in
  (p.pos_fname, p.pos_lnum, p.pos_cnum - p.pos_bol)

let report ctx ~loc rule msg =
  let file, line, col = loc_of loc in
  let suppressed =
    (not (List.memq rule ctx.enabled))
    || List.memq rule ctx.module_allow
    || List.exists (fun rs -> List.memq rule rs) ctx.suppression_stack
    || allow_matches ctx.allow ~rule ~modname:ctx.modname ~file ~line
  in
  if not suppressed then
    ctx.findings <-
      { f_file = file; f_line = line; f_col = col; f_rule = rule; f_msg = msg }
      :: ctx.findings

let env_of (e : Typedtree.expression) =
  match Envaux.env_of_only_summary e.exp_env with
  | env -> env
  | exception _ -> e.exp_env

(* The short operator name for messages: "Stdlib.<>" -> "<>". *)
let short_name name =
  match String.rindex_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

let check_comparison ctx (e : Typedtree.expression) name =
  let env = env_of e in
  match first_param env e.exp_type with
  | None -> ()
  | Some operand_ty -> (
      let op = short_name name in
      match immediacy_of env operand_ty with
      | Imm -> ()
      | Float_ty ->
          report ctx ~loc:e.exp_loc R4
            (Printf.sprintf
               "structural float comparison (%s) is NaN-hazardous — use \
                Float.equal/Float.compare/Float.min/Float.max"
               op)
      | Block | Poly | Unknown ->
          report ctx ~loc:e.exp_loc R1
            (Printf.sprintf
               "polymorphic %s at type %s — use a monomorphic comparison \
                (pattern match, String.equal, Int.compare, List.is_empty, ...)"
               op
               (type_to_string env operand_ty)))

let check_ident ctx (e : Typedtree.expression) path =
  let name = Path.name path in
  if mem_name eq_ops name || mem_name cmp_fns name || mem_name hash_fns name then
    check_comparison ctx e name;
  if mem_name hashtbl_iters name && ctx.sort_depth = 0 then
    report ctx ~loc:e.exp_loc R2
      (Printf.sprintf
         "%s iterates in nondeterministic hash order — sort the collected result \
          (e.g. |> List.sort) or suppress with [@tlblint.allow \"R2\"] and a \
          justification"
         (Path.name path));
  if
    mem_name nondet_exact name
    || List.exists (fun p -> has_prefix ~prefix:p name) nondet_prefixes
  then
    report ctx ~loc:e.exp_loc R3
      (Printf.sprintf
         "nondeterminism source %s — only sanctioned modules (Rng, Domain_pool, \
          wall-clock timing in bench/shard) may use this; see tools/tlblint/allow.sexp"
         name);
  if mem_name unsafe_array_fns name && not ctx.bounds_header then
    report ctx ~loc:e.exp_loc R4
      (Printf.sprintf
         "%s outside a proven-bounds module — audit the indices and add a \
          \"tlblint: proven-bounds\" header comment, or use safe indexing"
         (short_name name))

let head_ident (e : Typedtree.expression) =
  let rec peel (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> Some p
    | Texp_apply (f, _) -> peel f
    | _ -> None
  in
  peel e

let head_name e = match head_ident e with Some p -> Some (Path.name p) | None -> None

(* An application that guarantees a deterministic order downstream: a direct
   sort call, or x |> sort / sort @@ x piping. *)
let establishes_sort_ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match head_name f with
      | Some n when mem_name sort_fns n -> true
      | Some n when mem_name pipe_ops n ->
          List.exists
            (fun (_, arg) ->
              match arg with
              | Some a -> (
                  match head_name a with
                  | Some an -> mem_name sort_fns an
                  | None -> false)
              | None -> false)
            args
      | _ -> false)
  | _ -> false

(* Physical comparison against a constant constructor of a block type:
   [x == []], [x != None].  Works only because the constructor is immediate —
   flag it as the poly-compare class (R1). *)
let check_phys_eq ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply (f, args) -> (
      match head_name f with
      | Some n when mem_name phys_ops n ->
          List.iter
            (fun (_, arg) ->
              match arg with
              | Some ({ Typedtree.exp_desc = Texp_construct (_, cd, []); _ } as a) -> (
                  let env = env_of a in
                  match immediacy_of env a.exp_type with
                  | Imm | Float_ty -> ()
                  | Block | Poly | Unknown ->
                      report ctx ~loc:e.exp_loc R1
                        (Printf.sprintf
                           "physical equality (%s) against %s at type %s — \
                            pattern-match instead"
                           (short_name n) cd.Types.cstr_name
                           (type_to_string env a.exp_type)))
              | _ -> ())
            args
      | _ -> ())
  | _ -> ()

let make_iterator ctx =
  let with_suppression rules k =
    if List.compare_length_with rules 0 = 0 then k ()
    else begin
      ctx.suppression_stack <- rules :: ctx.suppression_stack;
      k ();
      ctx.suppression_stack <- List.tl ctx.suppression_stack
    end
  in
  let expr sub (e : Typedtree.expression) =
    with_suppression (rules_of_attributes e.exp_attributes) (fun () ->
        (match e.exp_desc with
        | Texp_ident (p, _, _) -> check_ident ctx e p
        | _ -> ());
        check_phys_eq ctx e;
        let sorts = establishes_sort_ctx e in
        if sorts then ctx.sort_depth <- ctx.sort_depth + 1;
        Tast_iterator.default_iterator.expr sub e;
        if sorts then ctx.sort_depth <- ctx.sort_depth - 1)
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    with_suppression (rules_of_attributes vb.vb_attributes) (fun () ->
        Tast_iterator.default_iterator.value_binding sub vb)
  in
  { Tast_iterator.default_iterator with expr; value_binding }

let rec ancestors acc depth path =
  let parent = Filename.dirname path in
  if depth = 0 || String.equal parent path then List.rev acc
  else ancestors (parent :: acc) (depth - 1) parent

(* Does the module's header (first 40 lines) carry the proven-bounds audit
   marker?  [sourcefile] is recorded relative to the build root, so resolve
   it against the cmt's build dir, the cwd, and the cmt's own ancestors (the
   recorded build dir goes stale when the tree moves). *)
let read_bounds_header ~cmt_path ~builddir ~sourcefile =
  let candidates =
    (Filename.concat builddir sourcefile :: sourcefile
    :: List.map
         (fun base -> Filename.concat base sourcefile)
         (ancestors [] 8 cmt_path))
  in
  let path = List.find_opt Sys.file_exists candidates in
  match path with
  | None -> false
  | Some path -> (
      match open_in path with
      | exception _ -> false
      | ic ->
          let found = ref false in
          (try
             for _ = 1 to 40 do
               let line = input_line ic in
               if contains_substring ~needle:"tlblint: proven-bounds" line then
                 found := true
             done
           with End_of_file -> ());
          close_in ic;
          !found)

let lint_cmt ?(rules = all_rules) ?(allow = []) ~cmt_path
    (cmt : Cmt_format.cmt_infos) : finding list =
  match cmt.cmt_annots with
  | Implementation str ->
      let sourcefile = Option.value cmt.cmt_sourcefile ~default:"" in
      let bounds_header =
        read_bounds_header ~cmt_path ~builddir:cmt.cmt_builddir ~sourcefile
      in
      let module_allow =
        (* Floating [@@@tlblint.allow "..."] anywhere at the top level
           suppresses the named rules for the whole module. *)
        List.concat_map
          (fun (item : Typedtree.structure_item) ->
            match item.str_desc with
            | Tstr_attribute a -> rules_of_attributes [ a ]
            | _ -> [])
          str.str_items
      in
      let ctx =
        {
          findings = [];
          suppression_stack = [];
          module_allow;
          sort_depth = 0;
          enabled = rules;
          allow;
          modname = cmt.cmt_modname;
          bounds_header;
        }
      in
      let it = make_iterator ctx in
      it.structure it str;
      List.sort compare_findings ctx.findings
  | _ -> []

(* ----- cmt discovery and load-path setup ----- *)

let rec find_cmts_under acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> find_cmts_under acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

(* All .cmt files under the given files/directories, in sorted order. *)
let find_cmts paths =
  List.sort String.compare
    (List.fold_left
       (fun acc p ->
         if Sys.file_exists p then find_cmts_under acc p
         else failwith (Printf.sprintf "tlblint: no such path: %s" p))
       [] paths)

(* Initialize the compiler load path so Envaux can rebuild the typing
   environments stored in the cmts: the stdlib, any explicit -I dirs, and
   every load-path entry recorded in the cmts themselves.  Relative entries
   are resolved against the recorded build dir *and* every ancestor of the
   cmt file itself — cmt_builddir records the path at build time, which is
   stale whenever the tree has moved (sandboxed builds, CI caches), whereas
   an ancestor of the cmt is the live _build context. *)
let init_load_path ~extra_dirs (cmts : (string * Cmt_format.cmt_infos) list) =
  let tbl = Hashtbl.create 64 in
  let dirs = ref [] in
  let add d =
    if
      (not (Hashtbl.mem tbl d))
      && Sys.file_exists d
      && Sys.is_directory d
    then begin
      Hashtbl.add tbl d ();
      dirs := d :: !dirs
    end
  in
  add Config.standard_library;
  List.iter add extra_dirs;
  List.iter
    (fun (path, (cmt : Cmt_format.cmt_infos)) ->
      let bases = cmt.cmt_builddir :: ancestors [] 8 path in
      List.iter
        (fun d ->
          if Filename.is_relative d then
            List.iter (fun base -> add (Filename.concat base d)) bases
          else add d)
        cmt.cmt_loadpath)
    cmts;
  Load_path.init ~auto_include:Load_path.no_auto_include (List.rev !dirs)

(* Lint a set of .cmt paths end to end; returns the merged, sorted findings. *)
let run ?(rules = all_rules) ?(allow = []) ?(extra_dirs = []) cmt_paths =
  let cmts =
    List.filter_map
      (fun p ->
        match Cmt_format.read_cmt p with
        | cmt -> Some (p, cmt)
        | exception _ ->
            prerr_endline ("tlblint: warning: unreadable cmt " ^ p);
            None)
      cmt_paths
  in
  init_load_path ~extra_dirs cmts;
  let findings =
    List.concat_map (fun (p, cmt) -> lint_cmt ~rules ~allow ~cmt_path:p cmt) cmts
  in
  List.sort compare_findings findings
