(* tlblint CLI — scan .cmt trees and report determinism/hot-path findings.

   Usage: tlblint [--rules R1,R2,...] [--allow FILE] [-I DIR] [-q] PATH...
   PATHs are .cmt files or directories searched recursively (point it at
   _build/default/lib etc. after `dune build @check`).  Exits 1 when any
   unsuppressed finding remains, 2 on usage errors. *)

let usage =
  "usage: tlblint [--rules R1,R2,R3,R4] [--allow FILE] [-I DIR] [-q] PATH...\n\
   Scans .cmt files (or directories of them) for determinism and hot-path\n\
   hazards.  Rules: R1 poly-compare, R2 unordered-iteration,\n\
   R3 nondeterminism-source, R4 unsafe-array/float-compare.\n\
   Default allowlist: tools/tlblint/allow.sexp (when present)."

let () =
  let rules = ref Lint.all_rules in
  let allow_file = ref None in
  let extra_dirs = ref [] in
  let quiet = ref false in
  let paths = ref [] in
  let die msg =
    prerr_endline msg;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
        print_endline usage;
        exit 0
    | "--rules" :: spec :: rest ->
        let named =
          String.split_on_char ',' spec
          |> List.filter_map (fun w ->
                 match Lint.rule_of_string w with
                 | Some r -> Some r
                 | None -> die (Printf.sprintf "tlblint: unknown rule %S" w))
        in
        if List.compare_length_with named 0 = 0 then
          die "tlblint: --rules needs at least one of R1,R2,R3,R4";
        rules := named;
        parse rest
    | "--allow" :: file :: rest ->
        allow_file := Some file;
        parse rest
    | "-I" :: dir :: rest ->
        extra_dirs := dir :: !extra_dirs;
        parse rest
    | "-q" :: rest ->
        quiet := true;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        die (Printf.sprintf "tlblint: unknown option %s\n%s" arg usage)
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if List.compare_length_with !paths 0 = 0 then die usage;
  let allow =
    match !allow_file with
    | Some f -> Lint.load_allowlist f
    | None ->
        let default = Filename.concat (Filename.concat "tools" "tlblint") "allow.sexp" in
        if Sys.file_exists default then Lint.load_allowlist default else []
  in
  let cmts = Lint.find_cmts (List.rev !paths) in
  if List.compare_length_with cmts 0 = 0 then
    die "tlblint: no .cmt files found (build with `dune build @check` first)";
  let findings =
    Lint.run ~rules:!rules ~allow ~extra_dirs:(List.rev !extra_dirs) cmts
  in
  List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
  let n = List.length findings in
  if not !quiet then begin
    let count r =
      List.length (List.filter (fun f -> f.Lint.f_rule = r) findings)
    in
    Format.printf "tlblint: %d cmt file(s), %d finding(s)" (List.length cmts) n;
    if n > 0 then
      Format.printf " (R1 %d, R2 %d, R3 %d, R4 %d)" (count Lint.R1) (count Lint.R2)
        (count Lint.R3) (count Lint.R4);
    Format.printf "@."
  end;
  exit (if n > 0 then 1 else 0)
