#!/usr/bin/env python3
"""Validate `tlbsim stats` output. Stdlib only (CI runners have no jsonschema).

    validate_stats.py --json  bench/stats.schema.json < stats.json
    validate_stats.py --prom < stats.prom

--json checks the document against a JSON-Schema subset (type, required,
properties, items, enum, const) and then a few semantic invariants the
schema language cannot express: count == sum(histogram counts incl.
under/overflow/nan) and null percentiles exactly when count == 0.

--prom checks the Prometheus text exposition line format: HELP/TYPE
comments, `name{labels} value` samples, cumulative non-decreasing buckets
per series, and `le="+Inf"` bucket == `_count`.
"""

import json
import re
import sys


def fail(msg):
    print(f"validate_stats: {msg}", file=sys.stderr)
    sys.exit(1)


def check(schema, doc, path="$"):
    if "const" in schema:
        if doc != schema["const"]:
            fail(f"{path}: expected const {schema['const']!r}, got {doc!r}")
    if "enum" in schema:
        if doc not in schema["enum"]:
            fail(f"{path}: {doc!r} not in enum {schema['enum']!r}")
    if "type" in schema:
        types = schema["type"] if isinstance(schema["type"], list) else [schema["type"]]
        pytypes = {
            "object": dict,
            "array": list,
            "string": str,
            "number": (int, float),
            "integer": int,
            "boolean": bool,
            "null": type(None),
        }
        # bool is an int in Python; exclude it from number/integer.
        ok = any(
            isinstance(doc, pytypes[t]) and not (t in ("number", "integer") and isinstance(doc, bool))
            for t in types
        )
        if not ok:
            fail(f"{path}: expected {types}, got {type(doc).__name__} ({doc!r})")
    if isinstance(doc, dict):
        for key in schema.get("required", []):
            if key not in doc:
                fail(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in doc:
                check(sub, doc[key], f"{path}.{key}")
    if isinstance(doc, list) and "items" in schema:
        for i, item in enumerate(doc):
            check(schema["items"], item, f"{path}[{i}]")


def validate_json(schema_path):
    schema = json.load(open(schema_path))
    doc = json.load(sys.stdin)
    check(schema, doc)
    for i, s in enumerate(doc["series"]):
        h = s["histogram"]
        total = sum(h["counts"]) + h["underflow"] + h["overflow"] + h["nan"]
        if total != s["count"]:
            fail(f"series[{i}] {s['metric']}: histogram total {total} != count {s['count']}")
        empties = [s[k] is None for k in ("min", "p50", "p90", "p99", "max")]
        if s["count"] == 0 and not all(empties):
            fail(f"series[{i}] {s['metric']}: empty series must report null percentiles")
        if s["count"] > 0 and any(empties):
            fail(f"series[{i}] {s['metric']}: non-empty series reported null percentiles")
    print(f"validate_stats: JSON ok ({len(doc['series'])} series)")


SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? '
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
)


def validate_prom():
    buckets = {}  # series key (name + non-le labels) -> list of (le, value)
    counts = {}
    n_samples = 0
    for lineno, line in enumerate(sys.stdin, 1):
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            if not re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line):
                fail(f"line {lineno}: malformed comment: {line!r}")
            continue
        if not SAMPLE_RE.match(line):
            fail(f"line {lineno}: malformed sample: {line!r}")
        n_samples += 1
        name = line.split("{")[0].split(" ")[0]
        value = float(line.rsplit(" ", 1)[1])
        labels = dict(re.findall(r'([a-zA-Z0-9_]+)="([^"]*)"', line))
        le = labels.pop("le", None)
        key = (name, tuple(sorted(labels.items())))
        if name.endswith("_bucket"):
            if le is None:
                fail(f"line {lineno}: _bucket sample without le label")
            buckets.setdefault(key, []).append((le, value))
        elif name.endswith("_count"):
            counts[(name[: -len("_count")] + "_bucket", key[1])] = value
    if n_samples == 0:
        fail("no samples found")
    for key, series in buckets.items():
        values = [v for _, v in series]
        if values != sorted(values):
            fail(f"{key}: bucket counts not cumulative")
        les = [le for le, _ in series]
        if les[-1] != "+Inf":
            fail(f"{key}: last bucket is {les[-1]!r}, expected +Inf")
        expected = counts.get(key)
        if expected is not None and values[-1] != expected:
            fail(f"{key}: +Inf bucket {values[-1]} != _count {expected}")
    print(f"validate_stats: Prometheus ok ({n_samples} samples, {len(buckets)} histograms)")


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "--json":
        if len(sys.argv) != 3:
            fail("usage: validate_stats.py --json <schema.json> < doc.json")
        validate_json(sys.argv[2])
    elif len(sys.argv) == 2 and sys.argv[1] == "--prom":
        validate_prom()
    else:
        fail("usage: validate_stats.py (--json <schema.json> | --prom) < input")


if __name__ == "__main__":
    main()
